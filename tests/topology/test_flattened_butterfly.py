"""Tests for the flattened butterfly topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.base import ChannelKind
from repro.topology.flattened_butterfly import FlattenedButterfly


class TestOneDimensional:
    """A 1-D flattened butterfly is a completely-connected network."""

    def test_structure(self):
        fb = FlattenedButterfly(dims=(4,), concentration=2)
        assert fb.num_routers == 4
        assert fb.num_terminals == 8
        assert fb.radix == 2 + 3
        assert fb.fabric.num_cables() == 4 * 3 // 2

    def test_diameter_one(self):
        fb = FlattenedButterfly(dims=(4,), concentration=2)
        assert fb.fabric.router_diameter() == 1


class TestTwoDimensional:
    def test_figure6a_shape(self):
        """Figure 6(a): 2-D flattened butterfly group, 2x4 with p=2."""
        fb = FlattenedButterfly(dims=(2, 4), concentration=2)
        assert fb.num_routers == 8
        assert fb.radix == 2 + 1 + 3

    def test_coords_roundtrip(self):
        fb = FlattenedButterfly(dims=(3, 4), concentration=1)
        for router in range(fb.num_routers):
            assert fb.router_at(fb.coords_of(router)) == router

    def test_channels_connect_within_lines(self):
        fb = FlattenedButterfly(dims=(3, 4), concentration=1)
        for forward, _ in fb.fabric.bidirectional_links():
            src = fb.coords_of(forward.src.router)
            dst = fb.coords_of(forward.dst.router)
            differing = [i for i, (s, d) in enumerate(zip(src, dst)) if s != d]
            assert len(differing) == 1

    def test_hop_count_is_hamming_distance(self):
        fb = FlattenedButterfly(dims=(3, 4), concentration=1)
        assert fb.minimal_hop_count(0, 0) == 0
        # terminal t sits on router t for c=1
        assert fb.minimal_hop_count(0, 1) == 1  # same row
        assert fb.minimal_hop_count(0, 5) == 2  # different row and column

    def test_global_dims_marking(self):
        fb = FlattenedButterfly(dims=(4, 4), concentration=2, global_dims=(1,))
        local = fb.fabric.num_cables(ChannelKind.LOCAL)
        global_ = fb.fabric.num_cables(ChannelKind.GLOBAL)
        assert local == global_ == 4 * (4 * 3 // 2)


class TestValidation:
    def test_rejects_empty_dims(self):
        with pytest.raises(ValueError):
            FlattenedButterfly(dims=(), concentration=2)

    def test_rejects_zero_concentration(self):
        with pytest.raises(ValueError):
            FlattenedButterfly(dims=(4,), concentration=0)

    def test_dim_port_rejects_self(self):
        fb = FlattenedButterfly(dims=(4,), concentration=1)
        with pytest.raises(ValueError):
            fb.dim_port(0, 0, 0)


@given(
    dims=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
    concentration=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_fb_cable_count_formula(dims, concentration):
    """Property: cables per dimension = routers * (m - 1) / 2."""
    fb = FlattenedButterfly(dims=dims, concentration=concentration)
    expected = sum(fb.num_routers * (m - 1) // 2 for m in dims)
    assert fb.fabric.num_cables() == expected
    if fb.num_routers > 1:
        assert fb.fabric.router_diameter() <= len(dims)
