"""Tests for the k-ary n-cube (torus) topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.torus import Torus


class TestConstruction:
    def test_3d_torus(self):
        torus = Torus(dims=(4, 4, 4), concentration=2)
        assert torus.num_routers == 64
        assert torus.num_terminals == 128
        assert torus.radix == 2 + 6
        assert torus.fabric.num_cables() == 3 * 64

    def test_size_two_rings_have_single_cables(self):
        torus = Torus(dims=(2, 2), concentration=1)
        # 4 routers, 2 dims; each ring of size 2 gets one cable, not two.
        assert torus.fabric.num_cables() == 4

    def test_rejects_dim_one(self):
        with pytest.raises(ValueError):
            Torus(dims=(1, 4), concentration=1)

    def test_rejects_zero_concentration(self):
        with pytest.raises(ValueError):
            Torus(dims=(4, 4), concentration=0)

    def test_coords_roundtrip(self):
        torus = Torus(dims=(3, 4, 5), concentration=1)
        for router in (0, 7, 59, torus.num_routers - 1):
            assert torus.router_at(torus.coords_of(router)) == router


class TestStructure:
    def test_neighbours_wrap(self):
        torus = Torus(dims=(4,), concentration=1)
        assert sorted(torus.fabric.neighbors(0)) == [1, 3]

    def test_connected(self):
        torus = Torus(dims=(3, 3, 3), concentration=1)
        assert torus.fabric.is_connected()

    def test_diameter(self):
        torus = Torus(dims=(4, 4), concentration=1)
        assert torus.fabric.router_diameter() == 4  # 2 + 2 ring halves

    def test_hop_count_ring_distance(self):
        torus = Torus(dims=(5,), concentration=1)
        assert torus.minimal_hop_count(0, 1) == 1
        assert torus.minimal_hop_count(0, 4) == 1  # wraps
        assert torus.minimal_hop_count(0, 2) == 2


@given(
    dims=st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3),
    concentration=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=20, deadline=None)
def test_torus_degree_regular(dims, concentration):
    """Property: every router's network degree is 2n (or n for size-2 dims)."""
    torus = Torus(dims=dims, concentration=concentration)
    expected_degree = sum(1 if m == 2 else 2 for m in dims)
    for router in range(torus.num_routers):
        network_ports = torus.fabric.radix(router) - concentration
        assert network_ports == expected_degree
