"""Tests for the Figure 6 group variants (flattened-butterfly groups)."""

import pytest

from repro.core.params import TopologyError
from repro.topology.base import ChannelKind
from repro.topology.group_variants import FlattenedButterflyGroupDragonfly


class TestFigure6b:
    """3-D flattened butterfly (2x2x2 cube) intra-group network."""

    def make(self, num_groups=0):
        return FlattenedButterflyGroupDragonfly(
            p=2, group_dims=(2, 2, 2), h=2, num_groups=num_groups
        )

    def test_router_radix_is_7(self):
        variant = self.make(num_groups=3)
        assert variant.radix == 2 + 3 + 2  # p + one port per dim + h

    def test_effective_radix_doubles_figure5(self):
        """k' goes from 16 (Figure 5) to 32 with the same k=7 router."""
        variant = self.make(num_groups=3)
        assert variant.a == 8
        assert variant.effective_radix == 32

    def test_max_group_count(self):
        variant = self.make()
        assert variant.g == 8 * 2 + 1  # a*h + 1 = 17

    def test_intra_group_hops_bounded_by_dims(self):
        variant = self.make(num_groups=3)
        for src in variant.fabric.ports(0) and range(8):
            for dst in range(8):
                hops = variant.intra_group_hops(src, dst)
                assert hops <= 3
                assert (hops == 0) == (src == dst)

    def test_group_connectivity(self):
        variant = self.make(num_groups=3)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert variant.group_links(i, j)

    def test_fabric_connected(self):
        variant = self.make(num_groups=3)
        assert variant.fabric.is_connected()


class TestFigure6a:
    """2-D flattened butterfly group exploiting packaging locality."""

    def test_same_effective_radix_as_figure5(self):
        variant = FlattenedButterflyGroupDragonfly(
            p=2, group_dims=(2, 2), h=2, num_groups=3
        )
        assert variant.a == 4
        assert variant.effective_radix == 16  # same k' as Figure 5
        # but one fewer local port (2 dims of size 2 -> 2 ports vs 3).
        assert variant.local_ports == 2


class TestValidation:
    def test_rejects_bad_dims(self):
        with pytest.raises(TopologyError):
            FlattenedButterflyGroupDragonfly(p=2, group_dims=(), h=2)

    def test_rejects_too_many_groups(self):
        with pytest.raises(TopologyError):
            FlattenedButterflyGroupDragonfly(
                p=2, group_dims=(2, 2), h=1, num_groups=10
            )

    def test_rejects_odd_endpoints(self):
        with pytest.raises(TopologyError):
            FlattenedButterflyGroupDragonfly(
                p=1, group_dims=(3,), h=1, num_groups=3
            )

    def test_global_port_range(self):
        variant = FlattenedButterflyGroupDragonfly(
            p=2, group_dims=(2, 2), h=2, num_groups=3
        )
        with pytest.raises(TopologyError):
            variant.global_port(2)


class TestScaling:
    def test_max_size_wiring_one_channel_per_pair(self):
        variant = FlattenedButterflyGroupDragonfly(
            p=1, group_dims=(2,), h=1, num_groups=0
        )
        assert variant.g == 3
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert len(variant.group_links(i, j)) == 1

    def test_global_cable_count(self):
        variant = FlattenedButterflyGroupDragonfly(
            p=2, group_dims=(2, 2, 2), h=2, num_groups=17
        )
        assert variant.fabric.num_cables(ChannelKind.GLOBAL) == 17 * 16 // 2
