"""Property tests shared by every topology builder.

Whatever the family, a built fabric must be connected, respect its radix
budget, pair every directed channel with its reverse, and agree with its
own analytic channel-count formulas.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DragonflyParams
from repro.topology.dragonfly import Dragonfly
from repro.topology.flattened_butterfly import FlattenedButterfly
from repro.topology.folded_clos import FoldedClos
from repro.topology.group_variants import FlattenedButterflyGroupDragonfly
from repro.topology.torus import Torus


@st.composite
def any_topology(draw):
    family = draw(st.sampled_from(["dragonfly", "fb", "clos", "torus", "variant"]))
    if family == "dragonfly":
        h = draw(st.integers(min_value=1, max_value=2))
        a = draw(st.integers(min_value=2, max_value=4))
        p = draw(st.integers(min_value=1, max_value=2))
        return Dragonfly(DragonflyParams(p=p, a=a, h=h))
    if family == "fb":
        dims = tuple(
            draw(st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=2))
        )
        c = draw(st.integers(min_value=1, max_value=3))
        return FlattenedButterfly(dims=dims, concentration=c)
    if family == "clos":
        radix = draw(st.sampled_from([4, 8]))
        levels = draw(st.integers(min_value=1, max_value=3))
        return FoldedClos(num_terminals=(radix // 2) ** levels, radix=radix)
    if family == "torus":
        dims = tuple(
            draw(st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3))
        )
        c = draw(st.integers(min_value=1, max_value=2))
        return Torus(dims=dims, concentration=c)
    h = draw(st.integers(min_value=1, max_value=2))
    dims = tuple(
        draw(st.lists(st.integers(min_value=2, max_value=2), min_size=1, max_size=3))
    )
    g = draw(st.integers(min_value=1, max_value=3))
    a = 1
    for m in dims:
        a *= m
    if g > 1 and (g * a * h) % 2:
        g = max(1, g - 1)
    g = min(g, a * h + 1)
    return FlattenedButterflyGroupDragonfly(p=1, group_dims=dims, h=h, num_groups=g)


@given(any_topology())
@settings(max_examples=40, deadline=None)
def test_fabric_connected(topology):
    fabric = topology.fabric
    if fabric.num_routers > 1:
        assert fabric.is_connected()


@given(any_topology())
@settings(max_examples=40, deadline=None)
def test_channels_come_in_reverse_pairs(topology):
    fabric = topology.fabric
    assert fabric.num_channels % 2 == 0
    for forward, backward in fabric.bidirectional_links():
        assert forward.src == backward.dst
        assert forward.dst == backward.src
        assert forward.kind == backward.kind
        assert forward.latency == backward.latency


@given(any_topology())
@settings(max_examples=40, deadline=None)
def test_every_terminal_has_unique_port(topology):
    fabric = topology.fabric
    seen = set()
    for terminal in fabric.terminals:
        key = (terminal.router, terminal.port)
        assert key not in seen
        seen.add(key)
        assert fabric.is_terminal_port(terminal.router, terminal.port)


@given(any_topology())
@settings(max_examples=40, deadline=None)
def test_radix_budget_respected(topology):
    fabric = topology.fabric
    declared = getattr(topology, "radix", None)
    if declared is None:
        declared = topology.params.radix
    if callable(declared):
        declared = declared()
    assert fabric.max_radix() <= declared


@given(any_topology())
@settings(max_examples=40, deadline=None)
def test_port_maps_are_bijective(topology):
    """out_channel/terminal_at partition every wired port."""
    fabric = topology.fabric
    for router in range(fabric.num_routers):
        for port in fabric.ports(router):
            channel = fabric.out_channel(router, port)
            terminal = fabric.terminal_at(router, port)
            assert (channel is None) != (terminal is None)
