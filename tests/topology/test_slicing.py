"""Tests for channel slicing and bandwidth tapering (Section 3.2)."""

import pytest

from repro.core.params import DragonflyParams
from repro.topology.base import ChannelKind
from repro.topology.slicing import ChannelSlicedDragonfly, tapered_dragonfly


class TestChannelSlicing:
    def test_slices_are_identical_topologies(self):
        sliced = ChannelSlicedDragonfly(DragonflyParams(p=1, a=2, h=1), num_slices=3)
        cables = {df.fabric.num_cables() for df in sliced.slices}
        assert len(cables) == 1

    def test_total_cables_scale_with_slices(self):
        params = DragonflyParams(p=1, a=2, h=1)
        one = ChannelSlicedDragonfly(params, num_slices=1)
        three = ChannelSlicedDragonfly(params, num_slices=3)
        assert three.total_cables() == 3 * one.total_cables()

    def test_terminal_bandwidth_multiplier(self):
        sliced = ChannelSlicedDragonfly(DragonflyParams(p=1, a=2, h=1), num_slices=4)
        assert sliced.terminal_bandwidth_multiplier == 4
        assert sliced.num_terminals == 6

    def test_round_robin_assignment(self):
        sliced = ChannelSlicedDragonfly(DragonflyParams(p=1, a=2, h=1), num_slices=2)
        assert [sliced.slice_for_packet(i) for i in range(4)] == [0, 1, 0, 1]
        assert [sliced.next_slice() for _ in range(4)] == [0, 1, 0, 1]

    def test_rejects_zero_slices(self):
        with pytest.raises(ValueError):
            ChannelSlicedDragonfly(DragonflyParams(p=1, a=2, h=1), num_slices=0)


class TestTapering:
    def test_taper_reduces_global_cables(self):
        params = DragonflyParams(p=2, a=4, h=2, num_groups=3)
        full = tapered_dragonfly(params, max_channels_per_pair=4)
        lean = tapered_dragonfly(params, max_channels_per_pair=2)
        assert (
            lean.fabric.num_cables(ChannelKind.GLOBAL)
            < full.fabric.num_cables(ChannelKind.GLOBAL)
        )

    def test_taper_keeps_connectivity(self):
        params = DragonflyParams(p=2, a=4, h=2, num_groups=3)
        lean = tapered_dragonfly(params, max_channels_per_pair=1)
        assert lean.fabric.is_connected()
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert len(lean.group_links(i, j)) == 1

    def test_local_channels_unchanged(self):
        params = DragonflyParams(p=2, a=4, h=2, num_groups=3)
        full = tapered_dragonfly(params, max_channels_per_pair=4)
        lean = tapered_dragonfly(params, max_channels_per_pair=1)
        assert (
            full.fabric.num_cables(ChannelKind.LOCAL)
            == lean.fabric.num_cables(ChannelKind.LOCAL)
        )
