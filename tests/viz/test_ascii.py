"""Tests for the ASCII chart renderers."""

import math

import pytest

from repro.viz.ascii import bar_chart, histogram_chart, line_chart, sweep_chart


class TestLineChart:
    def test_renders_markers_and_legend(self):
        chart = line_chart(
            {"MIN": [(0.1, 5.0), (0.5, 10.0)], "VAL": [(0.1, 8.0), (0.5, 20.0)]},
            title="demo",
        )
        assert "demo" in chart
        assert "o MIN" in chart and "x VAL" in chart
        assert chart.count("o") >= 2

    def test_saturated_points_pinned_to_top(self):
        chart = line_chart({"MIN": [(0.1, 5.0), (0.9, math.inf)]})
        assert "^" in chart
        assert "off-scale" in chart

    def test_y_max_clips(self):
        chart = line_chart({"A": [(0.0, 1.0), (1.0, 100.0)]}, y_max=10)
        assert "^" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart({})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            line_chart({"A": [(0, 1)]}, width=2, height=2)

    def test_single_x_value_handled(self):
        chart = line_chart({"A": [(0.5, 3.0)]})
        assert "o" in chart

    def test_axis_labels_present(self):
        chart = line_chart(
            {"A": [(0, 1), (1, 2)]}, x_label="load", y_label="latency"
        )
        assert "x: load" in chart
        assert "y: latency" in chart


class TestBarChart:
    def test_bars_scale_relative_to_max(self):
        chart = bar_chart({"minimal": 1.0, "other": 0.5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        chart = bar_chart({"a": 1.0, "long_name": 1.0})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_zero_values_ok(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestHistogramChart:
    def test_bins_render(self):
        chart = histogram_chart([(0, 0.6), (5, 0.3), (50, 0.1)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert "0.600" in lines[0]
        assert "     0" in lines[0] and "    50" in lines[2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            histogram_chart([])


class TestSweepChart:
    def test_charts_real_sweep(self, tiny_dragonfly, fast_config):
        from repro.network.sweep import load_sweep

        sweeps = {
            "MIN": load_sweep(
                tiny_dragonfly, "MIN", "uniform_random", (0.1, 0.4), fast_config
            ),
        }
        chart = sweep_chart(sweeps)
        assert "offered load" in chart
        assert "o MIN" in chart
