"""Regenerate the golden sweep fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/make_golden.py

Only regenerate after an *intentional* simulator behaviour change, and
bump ``repro.network.cache.SCHEMA_VERSION`` in the same commit -- the
fixtures pin the serial simulator's exact output so that the parallel
executor and the result cache can be checked against it bit for bit
(``tests/network/test_golden_sweep.py``).
"""

import dataclasses
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.core.params import DragonflyParams  # noqa: E402
from repro.network.config import SimulationConfig  # noqa: E402
from repro.network.sweep import load_sweep  # noqa: E402
from repro.topology.dragonfly import Dragonfly  # noqa: E402

GOLDEN_DIR = pathlib.Path(__file__).parent

#: (fixture name, routing, pattern, loads).  Small enough to run in a
#: few seconds, rich enough to exercise minimal and adaptive routing on
#: benign and adversarial traffic.
CASES = [
    ("min_uniform", "MIN", "uniform_random", (0.1, 0.3)),
    ("ugal_worst", "UGAL-L", "worst_case", (0.05, 0.15)),
]

CONFIG = SimulationConfig(
    load=0.1,
    seed=3,
    warmup_cycles=100,
    measure_cycles=100,
    drain_max_cycles=2000,
)


def main() -> None:
    topology = Dragonfly(DragonflyParams.paper_example_72())
    for name, routing, pattern, loads in CASES:
        points = load_sweep(topology, routing, pattern, loads, CONFIG)
        fixture = {
            "topology": {"p": 2, "a": 4, "h": 2},
            "routing": routing,
            "pattern": pattern,
            "loads": list(loads),
            "config": dataclasses.asdict(CONFIG),
            "points": [point.result.to_dict() for point in points],
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(fixture, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path} ({len(points)} points)")


if __name__ == "__main__":
    main()
