"""Tests for the Figure 18 structural comparison."""

import pytest

from repro.analysis.comparison import (
    dragonfly_structure,
    figure18_comparison,
    flattened_butterfly_structure,
)


class TestFlattenedButterfly64K:
    def test_structure(self):
        fb = flattened_butterfly_structure()
        assert fb.num_terminals == 65536
        assert fb.num_routers == 4096
        assert fb.router_radix == 61
        assert fb.global_ports_per_router == 30

    def test_half_the_ports_are_global(self):
        fb = flattened_butterfly_structure()
        assert fb.global_port_fraction == pytest.approx(0.49, abs=0.02)

    def test_global_cable_count(self):
        fb = flattened_butterfly_structure()
        assert fb.num_global_cables == 2 * 4096 * 15 // 2


class TestDragonfly64K:
    def test_structure(self):
        df = dragonfly_structure()
        assert df.num_terminals == 65536
        assert df.num_routers == 4096
        assert df.global_ports_per_router == 16

    def test_global_cable_count(self):
        df = dragonfly_structure()
        assert df.num_global_cables == 256 * 256 // 2

    def test_quarterish_ports_global(self):
        """The paper quotes 25% (against a 64-port budget); against the
        wired radix of 47 the fraction is 34%."""
        df = dragonfly_structure()
        assert df.global_ports_per_router / 64 == pytest.approx(0.25)
        assert df.global_port_fraction == pytest.approx(16 / 47)


class TestHeadlineComparison:
    def test_dragonfly_half_the_global_cables(self):
        fb, df = figure18_comparison()
        ratio = df.num_global_cables / fb.num_global_cables
        assert ratio == pytest.approx(0.5, abs=0.1)

    def test_dragonfly_lower_global_port_fraction(self):
        fb, df = figure18_comparison()
        assert df.global_port_fraction < fb.global_port_fraction

    def test_same_terminal_count(self):
        fb, df = figure18_comparison()
        assert fb.num_terminals == df.num_terminals

    def test_summaries_render(self):
        for summary in figure18_comparison():
            text = summary.summary()
            assert "global cables" in text
