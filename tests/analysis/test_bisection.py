"""Tests for bisection bandwidth analytics."""

import pytest

from repro.analysis.bisection import (
    dragonfly_bisection_per_node,
    dragonfly_group_bisection,
    max_size_dragonfly_bisection,
)
from repro.core.params import DragonflyParams
from repro.topology.dragonfly import Dragonfly


class TestGroupBisection:
    def test_figure5_network(self, paper72_dragonfly):
        # g=9: balanced cut 4|5 -> 20 crossing pairs, one channel each.
        assert dragonfly_group_bisection(paper72_dragonfly) == 20

    def test_closed_form_matches(self, paper72_dragonfly):
        assert (
            max_size_dragonfly_bisection(4, 2)
            == dragonfly_group_bisection(paper72_dragonfly)
        )

    def test_single_group_zero(self):
        df = Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=1))
        assert dragonfly_group_bisection(df) == 0

    def test_non_maximal_has_more_channels_per_cut(self):
        small = Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=4))
        # 4 groups, 8 ports each, pairs get 2-3 channels; cut 2|2 crosses
        # 4 pairs of at least 2 channels.
        assert dragonfly_group_bisection(small) >= 8

    def test_per_node_near_half_for_balanced(self, paper72_dragonfly):
        """Balanced dragonfly ~= full bisection: >= 0.5 channels/node
        cross the cut (only half a node's uniform traffic crosses)."""
        value = dragonfly_bisection_per_node(paper72_dragonfly)
        assert 0.25 <= value <= 0.6


class TestClosedForm:
    @pytest.mark.parametrize("a,h", [(2, 1), (4, 2), (8, 4)])
    def test_formula(self, a, h):
        g = a * h + 1
        expected = (g // 2) * ((g + 1) // 2)
        assert max_size_dragonfly_bisection(a, h) == expected

    def test_matches_exhaustive_for_small(self):
        df = Dragonfly(DragonflyParams(p=1, a=2, h=1))  # g = 3
        assert dragonfly_group_bisection(df) == max_size_dragonfly_bisection(2, 1)
