"""Tests for the Table 2 hop/cable-length comparison."""

import math

import pytest

from repro.analysis.diameter import (
    HopCount,
    dragonfly_minimal_diameter_hops,
    dragonfly_row,
    flattened_butterfly_row,
    table2,
)


class TestHopCount:
    def test_cycles(self):
        hops = HopCount(local=2, global_=1)
        assert hops.cycles(local_latency=3, global_latency=20) == 26

    def test_str(self):
        assert str(HopCount(2, 1)) == "2*hl + 1*hg"


class TestTable2Rows:
    def test_flattened_butterfly(self):
        row = flattened_butterfly_row()
        assert (row.minimal_diameter.local, row.minimal_diameter.global_) == (1, 2)
        assert (row.nonminimal_diameter.local, row.nonminimal_diameter.global_) == (2, 4)
        assert row.avg_cable_fraction == pytest.approx(1 / 3)
        assert row.max_cable_fraction == 1.0

    def test_dragonfly(self):
        row = dragonfly_row()
        assert (row.minimal_diameter.local, row.minimal_diameter.global_) == (2, 1)
        assert (row.nonminimal_diameter.local, row.nonminimal_diameter.global_) == (3, 2)
        assert row.avg_cable_fraction == pytest.approx(2 / 3)
        assert row.max_cable_fraction == 2.0

    def test_dragonfly_diagonal_footnote(self):
        row = dragonfly_row(diagonal_cables=True)
        assert row.max_cable_fraction == pytest.approx(math.sqrt(2))

    def test_dragonfly_fewer_global_hops(self):
        fb, df = flattened_butterfly_row(), dragonfly_row()
        assert df.minimal_diameter.global_ < fb.minimal_diameter.global_
        assert df.avg_cable_fraction > fb.avg_cable_fraction  # the trade

    def test_cable_lengths_scale_with_extent(self):
        row = dragonfly_row()
        assert row.avg_cable_m(30.0) == pytest.approx(20.0)
        assert row.max_cable_m(30.0) == pytest.approx(60.0)

    def test_table_order(self):
        rows = table2()
        assert rows[0].topology == "flattened butterfly"
        assert rows[1].topology == "dragonfly"


class TestConcreteDiameter:
    def test_matches_built_topology(self, paper72_dragonfly):
        expected = dragonfly_minimal_diameter_hops(
            paper72_dragonfly.a, paper72_dragonfly.g
        )
        assert paper72_dragonfly.fabric.router_diameter() == expected
