"""Tests for the zero-load latency model, cross-validated against the
simulator."""

import pytest

from repro.analysis.latency_model import LatencyModel
from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.sweep import run_point
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def model():
    return LatencyModel(DragonflyParams.paper_example_72())


class TestProbabilities:
    def test_sum_to_one(self, model):
        total = (
            model.probability_same_router()
            + model.probability_same_group()
            + model.probability_cross_group()
        )
        assert total == pytest.approx(1.0)

    def test_same_router_value(self, model):
        # p=2: one other terminal of 71 shares the router.
        assert model.probability_same_router() == pytest.approx(1 / 71)

    def test_same_group_value(self, model):
        # 8 per group, 2 on the source router -> 6 of 71.
        assert model.probability_same_group() == pytest.approx(6 / 71)


class TestExpectations:
    def test_minimal_global_hops_below_one(self, model):
        assert 0.85 < model.expected_minimal_global_hops() < 1.0

    def test_minimal_local_hops_below_two(self, model):
        assert 1.0 < model.expected_minimal_local_hops() < 2.0

    def test_worst_case_route(self, model):
        # 2 local + 1 global + ejection at unit latencies.
        assert model.worst_case_minimal_latency() == 4.0

    def test_serialisation_adds_flits(self):
        model = LatencyModel(DragonflyParams.paper_example_72(), packet_size=4)
        base = LatencyModel(DragonflyParams.paper_example_72())
        assert (
            model.expected_minimal_latency()
            == base.expected_minimal_latency() + 3
        )

    def test_global_latency_scales(self):
        slow = LatencyModel(DragonflyParams.paper_example_72(), global_latency=10)
        fast = LatencyModel(DragonflyParams.paper_example_72())
        delta = slow.expected_minimal_latency() - fast.expected_minimal_latency()
        assert delta == pytest.approx(9 * slow.expected_minimal_global_hops())


class TestAgainstSimulator:
    def test_min_zero_load_latency_matches(self, model):
        topology = Dragonfly(DragonflyParams.paper_example_72())
        config = SimulationConfig(
            load=0.01, warmup_cycles=500, measure_cycles=2000,
            drain_max_cycles=5000,
        )
        result = run_point(topology, make_routing("MIN"), "uniform_random", config)
        assert result.avg_latency == pytest.approx(
            model.expected_minimal_latency(), rel=0.1
        )

    def test_val_extra_latency_direction(self, model):
        topology = Dragonfly(DragonflyParams.paper_example_72())
        config = SimulationConfig(
            load=0.01, warmup_cycles=500, measure_cycles=2000,
            drain_max_cycles=5000,
        )
        minimal = run_point(topology, make_routing("MIN"), "uniform_random", config)
        valiant = run_point(topology, make_routing("VAL"), "uniform_random", config)
        measured_extra = valiant.avg_latency - minimal.avg_latency
        assert measured_extra == pytest.approx(
            model.valiant_extra_latency(), abs=0.7
        )

    def test_longer_global_channels_shift_latency(self):
        """With 5-cycle global channels the zero-load shift matches."""
        topology = Dragonfly(
            DragonflyParams.paper_example_72(), global_latency=5
        )
        model = LatencyModel(DragonflyParams.paper_example_72(), global_latency=5)
        config = SimulationConfig(
            load=0.01, warmup_cycles=500, measure_cycles=2000,
            drain_max_cycles=6000,
        )
        result = run_point(topology, make_routing("MIN"), "uniform_random", config)
        assert result.avg_latency == pytest.approx(
            model.expected_minimal_latency(), rel=0.1
        )
