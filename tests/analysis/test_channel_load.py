"""Tests validating the analytic throughput bounds against simulation."""

import pytest

from repro.analysis.channel_load import (
    min_uniform_throughput,
    min_worst_case_throughput,
    ugal_ideal_worst_case_throughput,
    valiant_uniform_throughput,
    valiant_worst_case_throughput,
)
from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.sweep import run_point
from repro.routing.ugal import make_routing


class TestClosedForms:
    def test_min_worst_case(self):
        params = DragonflyParams.paper_example_72()
        assert min_worst_case_throughput(params) == pytest.approx(1 / 8)

    def test_min_worst_case_1k(self):
        params = DragonflyParams.paper_1k()
        assert min_worst_case_throughput(params) == pytest.approx(1 / 32)

    def test_min_worst_case_nonmaximal_scales_with_links(self):
        params = DragonflyParams(p=2, a=4, h=2, num_groups=5)
        # At least 2 channels per pair -> twice the throughput.
        assert min_worst_case_throughput(params) == pytest.approx(2 / 8)

    def test_valiant_bounds_exact_finite_size(self):
        """Finite-g corrections: at g=9 the degenerate-intermediate
        probability is 1/8, so expected global hops = 15/8."""
        params = DragonflyParams.paper_example_72()
        # WC: 1 / (2 - 1/8) = 8/15.
        assert valiant_worst_case_throughput(params) == pytest.approx(8 / 15)
        # UR additionally scales by the cross-group fraction 64/71.
        expected_ur = 1.0 / ((64 / 71) * (15 / 8))
        assert valiant_uniform_throughput(params) == pytest.approx(expected_ur)
        # Ideal adaptive: (ah + 1) / (2 ah) = 9/16.
        assert ugal_ideal_worst_case_throughput(params) == pytest.approx(9 / 16)

    def test_bounds_approach_half_at_scale(self):
        """As g grows the paper's 'approximately 50%' emerges."""
        params = DragonflyParams.balanced(16)  # g = 513
        assert valiant_worst_case_throughput(params) == pytest.approx(0.5, abs=0.01)
        assert valiant_uniform_throughput(params) == pytest.approx(0.5, abs=0.01)
        assert ugal_ideal_worst_case_throughput(params) == pytest.approx(0.5, abs=0.01)

    def test_min_uniform_balanced(self):
        params = DragonflyParams.paper_example_72()
        assert min_uniform_throughput(params) == 1.0

    def test_min_worst_case_requires_groups(self):
        with pytest.raises(ValueError):
            min_worst_case_throughput(
                DragonflyParams(p=2, a=4, h=2, num_groups=1)
            )

    def test_underprovisioned_global_reduces_uniform(self):
        params = DragonflyParams(p=4, a=8, h=2)  # h < p
        assert min_uniform_throughput(params) < 1.0


class TestBoundsAgainstSimulation:
    """Integration: the simulator respects the closed-form bounds."""

    def test_min_wc_simulated_matches_bound(self, paper72_dragonfly):
        bound = min_worst_case_throughput(paper72_dragonfly.params)
        config = SimulationConfig(
            load=0.4, warmup_cycles=400, measure_cycles=400, drain_max_cycles=800
        )
        result = run_point(
            paper72_dragonfly, make_routing("MIN"), "worst_case", config
        )
        assert result.accepted_load == pytest.approx(bound, rel=0.15)

    def test_valiant_ur_near_half(self, paper72_dragonfly):
        config = SimulationConfig(
            load=0.45, warmup_cycles=400, measure_cycles=400,
            drain_max_cycles=8000,
        )
        result = run_point(
            paper72_dragonfly, make_routing("VAL"), "uniform_random", config
        )
        assert result.drained
        assert result.accepted_load == pytest.approx(0.45, abs=0.03)
