"""Tests for path diversity and fault tolerance analytics."""

import pytest

from repro.analysis.path_diversity import (
    group_fault_tolerance,
    group_graph,
    minimal_route_count,
    survives_faults,
    valiant_route_count,
)
from repro.core.params import DragonflyParams
from repro.topology.dragonfly import Dragonfly


class TestRouteCounts:
    def test_minimal_is_one_for_max_size(self, paper72_dragonfly):
        assert minimal_route_count(paper72_dragonfly, 0, 71) == 1

    def test_minimal_scales_with_parallel_channels(self):
        df = Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=3))
        assert minimal_route_count(df, 0, df.num_terminals - 1) == 4

    def test_intra_group_counts(self, paper72_dragonfly):
        assert minimal_route_count(paper72_dragonfly, 0, 7) == 1
        assert valiant_route_count(paper72_dragonfly, 0, 7) == 0

    def test_valiant_count_max_size(self, paper72_dragonfly):
        # g - 2 intermediate groups, one channel each way.
        assert valiant_route_count(paper72_dragonfly, 0, 71) == 7


class TestFaultTolerance:
    def test_group_graph_edge_count(self, paper72_dragonfly):
        graph = group_graph(paper72_dragonfly)
        assert graph.number_of_edges() == 36

    def test_single_fault_survivable(self, paper72_dragonfly):
        link = paper72_dragonfly.group_links(0, 1)[0]
        assert survives_faults(paper72_dragonfly, [link])

    def test_fault_removes_edge(self, paper72_dragonfly):
        link = paper72_dragonfly.group_links(0, 1)[0]
        graph = group_graph(paper72_dragonfly, [link])
        assert graph.number_of_edges() == 35
        assert graph.number_of_edges(0, 1) == 0

    def test_isolating_a_group_disconnects(self, paper72_dragonfly):
        df = paper72_dragonfly
        links = [df.group_links(0, g)[0] for g in range(1, df.g)]
        assert not survives_faults(df, links)

    def test_tolerance_is_g_minus_2_for_max_size(self, paper72_dragonfly):
        # Complete group graph on 9 groups: edge connectivity 8.
        assert group_fault_tolerance(paper72_dragonfly) == 7

    def test_tolerance_grows_with_parallel_channels(self):
        df = Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=3))
        # Each pair has 4 channels; disconnecting a group needs 8 cuts.
        assert group_fault_tolerance(df) == 7

    def test_single_group_zero(self):
        df = Dragonfly(DragonflyParams(p=2, a=4, h=2, num_groups=1))
        assert group_fault_tolerance(df) == 0
