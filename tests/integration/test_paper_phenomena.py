"""Integration tests: the paper's headline phenomena, end to end.

Each test runs the full stack (topology build -> routing -> cycle
simulation -> statistics) on the 72-node dragonfly and asserts the
qualitative result of the corresponding paper section.  These are the
claims DESIGN.md commits to reproducing; the benchmark harness produces
the full figures.
"""

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.sweep import run_point
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


def _run(df, routing, pattern, load, depth=16, warmup=800, measure=800,
         drain=12_000):
    config = SimulationConfig(
        load=load,
        warmup_cycles=warmup,
        measure_cycles=measure,
        drain_max_cycles=drain,
        vc_buffer_depth=depth,
    )
    return run_point(df, make_routing(routing), pattern, config)


class TestSection42_RoutingComparison:
    """Figure 8: the four baseline algorithms."""

    def test_ur_min_reaches_high_load_low_latency(self, df):
        result = _run(df, "MIN", "uniform_random", 0.8)
        assert result.drained
        assert result.avg_latency < 15

    def test_ur_valiant_doubles_latency_at_low_load(self, df):
        min_result = _run(df, "MIN", "uniform_random", 0.1)
        val_result = _run(df, "VAL", "uniform_random", 0.1)
        assert val_result.avg_latency > 1.2 * min_result.avg_latency

    def test_ur_ugal_tracks_min(self, df):
        for name in ("UGAL-L", "UGAL-G"):
            result = _run(df, name, "uniform_random", 0.7)
            assert result.drained
            assert result.avg_latency < 20

    def test_wc_min_throughput_collapses(self, df):
        result = _run(df, "MIN", "worst_case", 0.3, drain=2000)
        assert result.accepted_load == pytest.approx(1 / 8, rel=0.2)

    def test_wc_valiant_sustains_past_forty_percent(self, df):
        result = _run(df, "VAL", "worst_case", 0.42)
        assert result.drained
        assert result.avg_latency < 30

    def test_wc_ugal_g_low_latency_at_intermediate_load(self, df):
        result = _run(df, "UGAL-G", "worst_case", 0.3)
        assert result.avg_latency < 10

    def test_wc_ugal_l_high_latency_at_intermediate_load(self, df):
        """Problem II: UGAL-L pays heavily at intermediate load."""
        ugal_l = _run(df, "UGAL-L", "worst_case", 0.3)
        ugal_g = _run(df, "UGAL-G", "worst_case", 0.3)
        assert ugal_l.avg_latency > 2.5 * ugal_g.avg_latency


class TestSection431_ThroughputProblem:
    """Figure 9 / 10: VC discrimination."""

    def test_ugal_l_minimal_packets_suffer(self, df):
        result = _run(df, "UGAL-L", "worst_case", 0.3)
        assert result.avg_minimal_latency > 3 * result.avg_nonminimal_latency

    def test_vc_fixes_wc_but_costs_ur_throughput(self, df):
        wc = _run(df, "UGAL-L_VC", "worst_case", 0.42)
        assert wc.drained
        ur = _run(df, "UGAL-L_VC", "uniform_random", 0.9, drain=6000)
        # ~30% throughput loss on UR (the paper's Figure 10a).
        assert ur.saturated or ur.accepted_load < 0.85

    def test_hybrid_keeps_ur_throughput(self, df):
        ur = _run(df, "UGAL-L_VCH", "uniform_random", 0.85, drain=25_000)
        assert ur.accepted_load > 0.8


class TestSection432_LatencyProblem:
    """Figures 11, 12, 14, 16: buffer depth and credit round-trip."""

    def test_minimal_latency_scales_with_buffer_depth(self, df):
        shallow = _run(df, "UGAL-L", "worst_case", 0.25, depth=16)
        deep = _run(df, "UGAL-L", "worst_case", 0.25, depth=64, warmup=2000)
        assert deep.avg_minimal_latency > 2 * shallow.avg_minimal_latency

    def test_histogram_bimodal(self, df):
        result = _run(df, "UGAL-L", "worst_case", 0.25)
        # Non-minimal packets cluster at low latency...
        assert result.avg_nonminimal_latency < 10
        # ... while the minimal tail sits far above the mean.
        assert result.avg_minimal_latency > 2 * result.avg_latency / 1.5

    def test_shallower_buffers_cut_intermediate_latency(self, df):
        depth4 = _run(df, "UGAL-L", "worst_case", 0.3, depth=4)
        depth64 = _run(df, "UGAL-L", "worst_case", 0.3, depth=64, warmup=2000)
        assert depth4.avg_latency < depth64.avg_latency

    def test_cr_cuts_intermediate_latency(self, df):
        """Figure 16(a): >= 35% reduction at 16-flit buffers."""
        vch = _run(df, "UGAL-L_VCH", "worst_case", 0.3)
        cr = _run(df, "UGAL-L_CR", "worst_case", 0.3)
        assert cr.avg_latency < 0.65 * vch.avg_latency

    def test_cr_latency_less_sensitive_to_buffers(self, df):
        """Figure 16(a,b): UGAL-L_CR's latency grows far slower with
        buffer depth than UGAL-L_VCH's."""
        vch16 = _run(df, "UGAL-L_VCH", "worst_case", 0.3, depth=16)
        vch256 = _run(df, "UGAL-L_VCH", "worst_case", 0.3, depth=256,
                      warmup=5000)
        cr16 = _run(df, "UGAL-L_CR", "worst_case", 0.3, depth=16)
        cr256 = _run(df, "UGAL-L_CR", "worst_case", 0.3, depth=256,
                     warmup=5000)
        vch_growth = vch256.avg_latency / vch16.avg_latency
        cr_growth = cr256.avg_latency / cr16.avg_latency
        assert cr_growth < 0.5 * vch_growth

    def test_cr_approaches_ugal_g_on_ur(self, df):
        """Figure 16(c): latency reduction vs VCH near saturation."""
        vch = _run(df, "UGAL-L_VCH", "uniform_random", 0.85, drain=25_000)
        cr = _run(df, "UGAL-L_CR", "uniform_random", 0.85, drain=25_000)
        assert cr.avg_latency < 1.15 * vch.avg_latency


class TestConclusion_CombinedMechanisms:
    def test_final_algorithm_close_to_ideal(self, df):
        """UGAL-L_CR approaches UGAL-G: within ~4x latency at
        intermediate WC load where plain UGAL-L is ~10x off."""
        cr = _run(df, "UGAL-L_CR", "worst_case", 0.3)
        ideal = _run(df, "UGAL-G", "worst_case", 0.3)
        plain = _run(df, "UGAL-L", "worst_case", 0.3)
        assert cr.avg_latency < 4 * ideal.avg_latency
        assert plain.avg_latency > cr.avg_latency
