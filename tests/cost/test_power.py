"""Tests for the power model (extension)."""

import pytest

from repro.cost.model import CostConfig, DragonflyCost, TorusCost
from repro.cost.power import (
    PowerBreakdown,
    PowerConfig,
    power_breakdown,
    power_comparison,
)


@pytest.fixture(scope="module")
def cost_config():
    return CostConfig()


class TestPowerConfig:
    def test_defaults_from_table1(self):
        config = PowerConfig()
        assert config.optical_pj_per_bit == 60
        assert config.electrical_pj_per_bit == 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PowerConfig(router_pj_per_bit=-1)


class TestPowerBreakdown:
    def test_totals_consistent(self, cost_config):
        breakdown = power_breakdown(DragonflyCost(16384, cost_config))
        assert breakdown.total_watts == pytest.approx(
            breakdown.router_watts + breakdown.cable_watts
        )
        assert breakdown.watts_per_node > 0

    def test_optical_dominates_cables_at_scale(self, cost_config):
        """60 pJ/bit optical vs 1-2 pJ/bit copper: long cables dominate
        despite being a minority by count."""
        breakdown = power_breakdown(DragonflyCost(65536, cost_config))
        assert breakdown.optical_cable_watts > breakdown.electrical_cable_watts
        assert breakdown.optical_cable_watts > breakdown.backplane_watts

    def test_single_group_has_no_optical(self, cost_config):
        breakdown = power_breakdown(DragonflyCost(512, cost_config))
        assert breakdown.optical_cable_watts == 0

    def test_unit_conversion(self):
        """1 pJ/bit at 10 Gb/s is 10 mW per direction, 20 mW per link."""
        from repro.cost.power import _pj_gbps_to_watts

        assert _pj_gbps_to_watts(1.0, 10.0) == pytest.approx(0.020)

    def test_summary_renders(self, cost_config):
        text = power_breakdown(DragonflyCost(4096, cost_config)).summary()
        assert "W/node" in text


class TestPowerComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        sizes = [512, 16384, 65536]
        return sizes, power_comparison(sizes)

    def test_dragonfly_beats_clos_and_torus_at_scale(self, comparison):
        sizes, results = comparison
        dragonfly = results["dragonfly"][-1].watts_per_node
        assert dragonfly < results["folded_clos"][-1].watts_per_node
        assert dragonfly < results["torus_3d"][-1].watts_per_node

    def test_torus_power_grows_fastest(self, comparison):
        """Widening torus channels burns power superlinearly with N."""
        sizes, results = comparison
        torus_growth = (
            results["torus_3d"][-1].watts_per_node
            / results["torus_3d"][0].watts_per_node
        )
        dragonfly_growth = (
            results["dragonfly"][-1].watts_per_node
            / results["dragonfly"][0].watts_per_node
        )
        assert torus_growth > 2 * dragonfly_growth

    def test_all_topologies_reported(self, comparison):
        sizes, results = comparison
        assert set(results) == {
            "dragonfly", "flattened_butterfly", "folded_clos", "torus_3d",
        }
        for breakdowns in results.values():
            assert len(breakdowns) == len(sizes)
