"""Tests for the per-topology cost models (Figure 19)."""

import pytest

from repro.cost.model import (
    CostConfig,
    DragonflyCost,
    FlattenedButterflyCost,
    FoldedClosCost,
    TorusCost,
    cost_comparison,
)


@pytest.fixture(scope="module")
def config():
    return CostConfig()


class TestBreakdownConsistency:
    @pytest.mark.parametrize("model_cls", [
        DragonflyCost, FlattenedButterflyCost, FoldedClosCost, TorusCost,
    ])
    @pytest.mark.parametrize("n", [512, 4096, 16384])
    def test_totals_positive_and_consistent(self, model_cls, n, config):
        breakdown = model_cls(n, config).breakdown()
        assert breakdown.total_dollars > 0
        assert breakdown.dollars_per_node == pytest.approx(
            breakdown.total_dollars / n
        )
        assert breakdown.cable_dollars == pytest.approx(
            breakdown.backplane_dollars
            + breakdown.electrical_cable_dollars
            + breakdown.optical_cable_dollars
        )

    def test_rejects_zero_terminals(self, config):
        with pytest.raises(ValueError):
            DragonflyCost(0, config)


class TestDragonflyCost:
    def test_single_group_below_784(self, config):
        model = DragonflyCost(512, config)
        assert model.g == 1
        assert model.h == 0
        # No optical cables needed in one fully-connected layer.
        assert model.breakdown().num_optical_cables == 0

    def test_multi_group_beyond_784(self, config):
        model = DragonflyCost(4096, config)
        assert model.g == 8
        assert (model.p, model.a, model.h) == (16, 32, 16)

    def test_taper_converges_to_balanced_wiring(self, config):
        """At large g the uniform-bisection taper equals the natural
        balanced wiring ah/(g-1)."""
        model = DragonflyCost(65536, config)
        natural = (model.a * model.h) // (model.g - 1)
        assert model._channels_per_pair() == pytest.approx(natural, abs=1)

    def test_global_cables_scale_linearly(self, config):
        small = DragonflyCost(8192, config).breakdown()
        large = DragonflyCost(32768, config).breakdown()
        ratio = (
            large.num_inter_cabinet_cables / small.num_inter_cabinet_cables
        )
        assert 2.5 < ratio < 6.0


class TestFlattenedButterflyCost:
    def test_single_dim_below_784(self, config):
        model = FlattenedButterflyCost(512, config)
        assert model.dims == (32,)

    def test_dims_grow_with_n(self, config):
        assert FlattenedButterflyCost(4096, config).dims == (16, 16)
        assert FlattenedButterflyCost(65536, config).dims == (16, 16, 16)

    def test_partial_dims_widen_channels(self, config):
        model = FlattenedButterflyCost(8192, config)
        assert model.dims == (16, 16, 2)
        assert model._dim_gbps(2) == pytest.approx(8 * config.channel_gbps)

    def test_identical_to_dragonfly_when_degenerate(self, config):
        """Below one fully-connected layer both topologies coincide."""
        df = DragonflyCost(512, config).breakdown()
        fb = FlattenedButterflyCost(512, config).breakdown()
        assert df.dollars_per_node == pytest.approx(fb.dollars_per_node, rel=0.01)


class TestFoldedClosCost:
    def test_level_counts(self, config):
        assert FoldedClosCost(1024, config).levels == 2
        assert FoldedClosCost(65536, config).levels == 3

    def test_switch_count_formula(self, config):
        model = FoldedClosCost(16384, config)
        assert model.num_routers() == (2 * 3 - 1) * 16384 // 64


class TestTorusCost:
    def test_near_cubic_dims(self, config):
        model = TorusCost(16384, config)
        assert len(model.dims) == 3
        assert model.routers >= 16384 // 2

    def test_channels_widen_with_ring_size(self, config):
        model = TorusCost(16384, config)
        for m in model.dims:
            assert model._dim_gbps(m) >= config.channel_gbps


class TestFigure19Shape:
    """The relative positions the paper reports."""

    @pytest.fixture(scope="class")
    def comparison(self):
        sizes = [512, 4096, 16384, 65536]
        return sizes, cost_comparison(sizes)

    def test_dragonfly_equals_fb_at_small_size(self, comparison):
        sizes, results = comparison
        df = results["dragonfly"][0].dollars_per_node
        fb = results["flattened_butterfly"][0].dollars_per_node
        assert df == pytest.approx(fb, rel=0.02)

    def test_dragonfly_beats_fb_at_scale(self, comparison):
        sizes, results = comparison
        df = results["dragonfly"][-1].dollars_per_node
        fb = results["flattened_butterfly"][-1].dollars_per_node
        assert 1 - df / fb > 0.15  # paper: ~20-30% at 64K

    def test_dragonfly_beats_clos_by_half(self, comparison):
        sizes, results = comparison
        for i, n in enumerate(sizes):
            if n < 4096:
                continue
            df = results["dragonfly"][i].dollars_per_node
            clos = results["folded_clos"][i].dollars_per_node
            assert 0.4 < 1 - df / clos < 0.65  # paper: ~52%

    def test_torus_is_most_expensive_at_scale(self, comparison):
        sizes, results = comparison
        for i, n in enumerate(sizes):
            if n < 4096:
                continue
            torus = results["torus_3d"][i].dollars_per_node
            for name in ("dragonfly", "flattened_butterfly", "folded_clos"):
                assert torus > results[name][i].dollars_per_node

    def test_dragonfly_cost_grows_slowest(self, comparison):
        """From 4K to 64K (both multi-level regimes) the dragonfly's
        $/node grows slower than every alternative."""
        sizes, results = comparison
        start = sizes.index(4096)

        def growth(name):
            return (
                results[name][-1].dollars_per_node
                / results[name][start].dollars_per_node
            )

        assert growth("dragonfly") < growth("flattened_butterfly")
        assert growth("dragonfly") < growth("torus_3d")
