"""Tests for the packaging/floor-plan model."""

import pytest

from repro.cost.packaging import FloorPlan, PackagingConfig


@pytest.fixture()
def config():
    return PackagingConfig(
        terminals_per_cabinet=512,
        cabinet_pitch_m=1.5,
        cable_overhead_m=2.0,
        intra_cabinet_length_m=1.0,
    )


class TestConfigValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PackagingConfig(terminals_per_cabinet=0)

    def test_rejects_zero_pitch(self):
        with pytest.raises(ValueError):
            PackagingConfig(cabinet_pitch_m=0)

    def test_rejects_negative_lengths(self):
        with pytest.raises(ValueError):
            PackagingConfig(cable_overhead_m=-1)


class TestFloorPlan:
    def test_near_square_grid(self, config):
        plan = FloorPlan(10, config)
        assert plan.columns == 4
        assert plan.rows == 3

    def test_for_terminals(self, config):
        plan = FloorPlan.for_terminals(5000, config)
        assert plan.num_cabinets == 10

    def test_positions_unique(self, config):
        plan = FloorPlan(12, config)
        positions = {plan.position(c) for c in range(12)}
        assert len(positions) == 12

    def test_intra_cabinet_length(self, config):
        plan = FloorPlan(4, config)
        assert plan.cable_length(2, 2) == 1.0

    def test_adjacent_cabinet_length(self, config):
        plan = FloorPlan(4, config)
        # cabinets 0 and 1 share a row: 1 pitch + overhead.
        assert plan.cable_length(0, 1) == pytest.approx(1.5 + 2.0)

    def test_manhattan_distance(self, config):
        plan = FloorPlan(9, config)  # 3x3 grid
        # cabinet 0 at (0,0), cabinet 8 at (2,2): 4 hops.
        assert plan.cable_length(0, 8) == pytest.approx(4 * 1.5 + 2.0)

    def test_symmetry(self, config):
        plan = FloorPlan(9, config)
        for a in range(9):
            for b in range(9):
                assert plan.cable_length(a, b) == plan.cable_length(b, a)

    def test_max_cable_length(self, config):
        plan = FloorPlan(9, config)
        lengths = [
            plan.cable_length(a, b) for a in range(9) for b in range(9) if a != b
        ]
        assert max(lengths) == plan.max_cable_length()

    def test_average_pair_distance(self, config):
        plan = FloorPlan(2, config)
        assert plan.average_pair_distance() == pytest.approx(3.5)

    def test_central_cabinet(self, config):
        plan = FloorPlan(9, config)  # 3x3
        assert plan.central_cabinet() == 4

    def test_extent(self, config):
        plan = FloorPlan(9, config)
        assert plan.extent_m() == pytest.approx(4.5)

    def test_out_of_range(self, config):
        plan = FloorPlan(4, config)
        with pytest.raises(ValueError):
            plan.position(4)

    def test_single_cabinet(self, config):
        plan = FloorPlan(1, config)
        assert plan.average_pair_distance() == 1.0
        assert plan.max_cable_length() == 1.0
