"""Tests for the cable technology and cost models (Table 1, Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost.cables import (
    DEFAULT_CROSSOVER_M,
    ELECTRICAL_CABLE,
    INTEL_CONNECTS,
    LUXTERA_BLAZAR,
    TABLE_1,
    cable_cost,
    cable_cost_per_gbps,
    crossover_length_m,
    electrical_cost_per_gbps,
    is_optical,
    optical_cost_per_gbps,
)


class TestTable1:
    """The exact characteristics of Table 1."""

    def test_intel_connects(self):
        assert INTEL_CONNECTS.max_length_m == 100
        assert INTEL_CONNECTS.data_rate_gbps == 20
        assert INTEL_CONNECTS.power_w == 1.2
        assert INTEL_CONNECTS.energy_per_bit_pj == 60

    def test_luxtera(self):
        assert LUXTERA_BLAZAR.max_length_m == 300
        assert LUXTERA_BLAZAR.data_rate_gbps == 42
        assert LUXTERA_BLAZAR.energy_per_bit_pj == 55

    def test_electrical(self):
        assert ELECTRICAL_CABLE.max_length_m == 10
        assert ELECTRICAL_CABLE.energy_per_bit_pj == 2

    def test_three_rows(self):
        assert len(TABLE_1) == 3


class TestCostLines:
    """The fitted Figure 2 lines."""

    def test_electrical_line(self):
        assert electrical_cost_per_gbps(0) == pytest.approx(2.16)
        assert electrical_cost_per_gbps(10) == pytest.approx(16.16)

    def test_optical_line(self):
        assert optical_cost_per_gbps(0) == pytest.approx(9.7103)
        assert optical_cost_per_gbps(100) == pytest.approx(46.1103)

    def test_optical_higher_fixed_lower_slope(self):
        assert optical_cost_per_gbps(0) > electrical_cost_per_gbps(0)
        optical_slope = optical_cost_per_gbps(1) - optical_cost_per_gbps(0)
        electrical_slope = electrical_cost_per_gbps(1) - electrical_cost_per_gbps(0)
        assert optical_slope < electrical_slope

    def test_crossover_near_10m(self):
        """The paper quotes ~10 m; the fitted lines cross at ~7.3 m."""
        assert 6.0 < crossover_length_m() < 10.0

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            electrical_cost_per_gbps(-1)
        with pytest.raises(ValueError):
            optical_cost_per_gbps(-1)


class TestTechnologyChoice:
    def test_short_cables_electrical(self):
        assert cable_cost_per_gbps(2) == electrical_cost_per_gbps(2)
        assert not is_optical(2)

    def test_long_cables_optical(self):
        assert cable_cost_per_gbps(20) == optical_cost_per_gbps(20)
        assert is_optical(20)

    def test_default_crossover_is_8m(self):
        assert DEFAULT_CROSSOVER_M == 8.0
        assert not is_optical(7.99)
        assert is_optical(8.0)

    def test_cable_cost_scales_with_bandwidth(self):
        assert cable_cost(5, 20) == pytest.approx(2 * cable_cost(5, 10))

    def test_cable_cost_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            cable_cost(5, 0)

    @given(st.floats(min_value=0, max_value=300))
    @settings(max_examples=50)
    def test_chosen_cost_never_far_above_both_lines(self, length):
        """The chooser tracks the cheaper line except inside the small
        window between the true crossover (~7.3 m) and the paper's 8 m
        threshold."""
        chosen = cable_cost_per_gbps(length)
        cheaper = min(
            electrical_cost_per_gbps(length), optical_cost_per_gbps(length)
        )
        assert chosen >= cheaper - 1e-9
        assert chosen <= cheaper + 1.0
