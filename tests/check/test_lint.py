"""Tests for the repo-specific AST lint (REP001..REP006)."""

import textwrap

from repro.check.lint import (
    default_lint_root,
    iter_findings_by_rule,
    lint_sources,
    lint_tree,
)


def lint_snippet(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_tree(tmp_path)


class TestUnseededRandom:
    def test_module_level_call_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random
            x = random.random()
        """)
        rep001 = iter_findings_by_rule(findings, "REP001")
        assert len(rep001) == 1
        assert rep001[0].location == "module.py:3"

    def test_aliased_import_is_tracked(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random as rnd
            rnd.shuffle([1, 2, 3])
        """)
        assert iter_findings_by_rule(findings, "REP001")

    def test_from_import_of_global_function_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from random import choice
        """)
        assert iter_findings_by_rule(findings, "REP001")

    def test_seeded_random_instance_is_allowed(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import random
            from random import Random
            rng = random.Random(42)
            value = rng.random()
        """)
        assert not iter_findings_by_rule(findings, "REP001")


class TestHotPathSlots:
    def test_bare_hot_path_class_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class Flit:
                pass
        """)
        assert iter_findings_by_rule(findings, "REP002")

    def test_explicit_slots_satisfy_the_rule(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class Packet:
                __slots__ = ("a", "b")
        """)
        assert not iter_findings_by_rule(findings, "REP002")

    def test_dataclass_slots_satisfy_the_rule(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class RoutePlan:
                minimal: bool
        """)
        assert not iter_findings_by_rule(findings, "REP002")

    def test_unlisted_class_is_ignored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            class SimulationResult:
                pass
        """)
        assert not iter_findings_by_rule(findings, "REP002")


class TestPrintRule:
    def test_print_in_library_module_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            print("debug")
        """)
        assert iter_findings_by_rule(findings, "REP003")

    def test_main_modules_are_exempt(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            print("cli output")
        """, name="__main__.py")
        assert not iter_findings_by_rule(findings, "REP003")

    def test_check_package_is_exempt(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            print("report")
        """, name="check/report_writer.py")
        assert not iter_findings_by_rule(findings, "REP003")


class TestSetdefaultRule:
    def test_setdefault_in_simulator_core_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def deliver(pending, key, flit):
                pending.setdefault(key, []).append(flit)
        """, name="network/simulator.py")
        rep004 = iter_findings_by_rule(findings, "REP004")
        assert len(rep004) == 1
        assert rep004[0].location == "network/simulator.py:3"

    def test_setdefault_elsewhere_is_allowed(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def record(groups, key, link):
                groups.setdefault(key, []).append(link)
        """, name="topology/dragonfly.py")
        assert not iter_findings_by_rule(findings, "REP004")

    def test_clean_simulator_module_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def deliver(pending, key, flit):
                queue = pending.get(key)
                if queue is None:
                    queue = pending[key] = []
                queue.append(flit)
        """, name="network/simulator.py")
        assert not iter_findings_by_rule(findings, "REP004")


class TestAssertRule:
    def test_assert_in_network_engine_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def eject(terminal, expected):
                assert terminal == expected, "misrouted"
        """, name="network/simulator.py")
        rep005 = iter_findings_by_rule(findings, "REP005")
        assert len(rep005) == 1
        assert rep005[0].location == "network/simulator.py:3"
        assert "python -O" in rep005[0].message

    def test_assert_anywhere_in_network_package_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def run(results):
                assert all(r is not None for r in results)
        """, name="network/parallel.py")
        assert iter_findings_by_rule(findings, "REP005")

    def test_assert_outside_network_is_allowed(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def walk(trace):
                assert trace, "route failed to terminate"
        """, name="routing/paths.py")
        assert not iter_findings_by_rule(findings, "REP005")

    def test_raise_in_network_engine_passes(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            def eject(terminal, expected):
                if terminal != expected:
                    raise RuntimeError("misrouted")
        """, name="network/simulator.py")
        assert not iter_findings_by_rule(findings, "REP005")


class TestNumpyGlobalRandom:
    def test_np_random_call_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np
            x = np.random.rand(4)
        """)
        rep006 = iter_findings_by_rule(findings, "REP006")
        assert len(rep006) == 1
        assert rep006[0].location == "module.py:3"
        assert "interpreter-global" in rep006[0].message

    def test_numpy_random_module_alias_is_tracked(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy.random as npr
            npr.seed(0)
        """)
        assert iter_findings_by_rule(findings, "REP006")

    def test_from_import_of_global_function_is_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from numpy.random import shuffle
        """)
        assert iter_findings_by_rule(findings, "REP006")

    def test_from_numpy_import_random_is_tracked(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            from numpy import random
            random.normal(size=3)
        """)
        assert iter_findings_by_rule(findings, "REP006")

    def test_explicit_generator_is_allowed(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np
            from numpy.random import Generator, default_rng
            rng = np.random.default_rng(7)
            state = np.random.RandomState(7)
            values = rng.normal(size=4)
        """)
        assert not iter_findings_by_rule(findings, "REP006")

    def test_sanctioned_transplant_modules_are_exempt(self, tmp_path):
        for name in ("network/decide_kernel.py", "network/array_backend.py"):
            findings = lint_snippet(tmp_path, """
                import numpy as np
                draws = np.random.rand(8)
            """, name=name)
            assert not iter_findings_by_rule(findings, "REP006"), name

    def test_unrelated_random_attribute_is_ignored(self, tmp_path):
        findings = lint_snippet(tmp_path, """
            import numpy as np
            sizes = np.arange(10)
        """)
        assert not iter_findings_by_rule(findings, "REP006")


class TestTreeWalk:
    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        findings = lint_snippet(tmp_path, "def broken(:\n")
        rep000 = iter_findings_by_rule(findings, "REP000")
        assert len(rep000) == 1

    def test_missing_root_is_an_error_not_a_green_gate(self, tmp_path):
        findings = lint_tree(tmp_path / "no-such-dir")
        rep000 = iter_findings_by_rule(findings, "REP000")
        assert len(rep000) == 1
        assert "not a directory" in rep000[0].message

    def test_findings_are_ordered_by_path(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "a.py").write_text("import random\nrandom.random()\n")
        findings = lint_tree(tmp_path)
        assert [f.location for f in findings] == ["a.py:2", "b.py:2"]


class TestShippedSourcesAreClean:
    def test_src_repro_has_no_findings(self):
        findings = lint_sources()
        assert findings == [], [f.format() for f in findings]

    def test_default_root_is_the_repro_package(self):
        assert default_lint_root().name == "repro"


class TestScriptMode:
    """benchmarks/ and examples/ are linted in script mode (REP003)."""

    def lint_script(self, tmp_path, source, name="script.py"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source))
        return lint_tree(tmp_path, script_mode=True)

    def test_module_level_print_outside_guard_is_flagged(self, tmp_path):
        findings = self.lint_script(tmp_path, """
            print("runs on import")
        """)
        rep003 = iter_findings_by_rule(findings, "REP003")
        assert len(rep003) == 1
        assert "__main__" in rep003[0].message

    def test_print_inside_main_guard_is_exempt(self, tmp_path):
        findings = self.lint_script(tmp_path, """
            if __name__ == "__main__":
                print("fine: script output")
        """)
        assert iter_findings_by_rule(findings, "REP003") == []

    def test_print_inside_function_is_exempt(self, tmp_path):
        findings = self.lint_script(tmp_path, """
            def main():
                print("fine: called from the guard")
        """)
        assert iter_findings_by_rule(findings, "REP003") == []

    def test_print_in_guard_else_branch_is_flagged(self, tmp_path):
        findings = self.lint_script(tmp_path, """
            if __name__ == "__main__":
                pass
            else:
                print("still runs on import")
        """)
        assert len(iter_findings_by_rule(findings, "REP003")) == 1

    def test_reversed_guard_comparison_is_recognised(self, tmp_path):
        findings = self.lint_script(tmp_path, """
            if "__main__" == __name__:
                print("fine")
        """)
        assert iter_findings_by_rule(findings, "REP003") == []

    def test_unseeded_random_still_flagged_in_scripts(self, tmp_path):
        findings = self.lint_script(tmp_path, """
            import random

            def pick(items):
                return random.choice(items)
        """)
        assert len(iter_findings_by_rule(findings, "REP001")) == 1

    def test_asserts_allowed_in_scripts(self, tmp_path):
        findings = self.lint_script(
            tmp_path, "assert 1 + 1 == 2\n", name="network_demo.py"
        )
        assert iter_findings_by_rule(findings, "REP005") == []


class TestScriptTreesAreClean:
    def test_benchmarks_and_examples_have_no_findings(self):
        from repro.check.lint import default_script_roots

        roots = default_script_roots()
        assert roots, "expected a repo checkout with benchmarks/ + examples/"
        findings = lint_sources()
        assert findings == [], [f.format() for f in findings]
