"""Tests for the ``python -m repro.check`` command-line gate."""

import dataclasses

import pytest

from repro.check.__main__ import main, run_cdg_pass
from repro.check.registry import broken_configuration
from repro.check.report import (
    CheckReport,
    Finding,
    Severity,
    combined_exit_code,
)


class TestExitCodes:
    def test_lint_and_invariants_pass_on_shipped_tree(self, capsys):
        assert main(["lint", "invariants"]) == 0
        out = capsys.readouterr().out
        assert "[lint] ok" in out
        assert "[invariants] ok" in out
        assert "all passes clean" in out

    def test_unknown_pass_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cdg", "nonsense"])
        assert excinfo.value.code == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_list_shows_configurations(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "dragonfly/MIN+VAL+UGAL@figure7-3vc" in out
        assert "dragonfly-paper72" in out


class TestCdgGate:
    def test_broken_assignment_fails_the_gate_with_counterexample(
        self, monkeypatch, capsys
    ):
        """A configuration that *claims* deadlock freedom but has a
        cyclic CDG must exit nonzero and print the cycle."""
        lying = dataclasses.replace(
            broken_configuration(), expect_deadlock_free=True
        )
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [lying]
        )
        assert main(["cdg"]) == 1
        out = capsys.readouterr().out
        assert "CDG001" in out
        assert "CYCLIC" in out or "counterexample" in out
        assert "waits for" in out
        assert "FAILED" in out

    def test_demo_broken_reports_cycle_without_failing(self, monkeypatch, capsys):
        """The documented negative control is evidence, not a failure."""
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: []
        )
        assert main(["cdg", "--demo-broken", "-v"]) == 0
        out = capsys.readouterr().out
        assert "CDG002" in out
        assert "expected counterexample" in out

    def test_rotted_negative_control_is_an_error(self, monkeypatch):
        """If the negative control certifies clean, the demo has rotted
        and the gate must say so."""
        # A config that IS deadlock-free while claiming to deadlock.
        from repro.check.registry import default_configurations

        good = default_configurations()[0]
        rotted = dataclasses.replace(good, expect_deadlock_free=False)
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [rotted]
        )
        report = run_cdg_pass()
        assert not report.ok
        assert any(f.code == "CDG003" for f in report.errors)


class TestReportPlumbing:
    def test_combined_exit_code(self):
        clean = CheckReport(pass_name="a")
        dirty = CheckReport(
            pass_name="b",
            findings=[Finding("X001", Severity.ERROR, "somewhere", "boom")],
        )
        assert combined_exit_code([clean]) == 0
        assert combined_exit_code([clean, dirty]) == 1

    def test_warnings_do_not_gate(self):
        report = CheckReport(
            pass_name="w",
            findings=[Finding("X002", Severity.WARNING, "somewhere", "eh")],
        )
        assert report.ok
        assert combined_exit_code([report]) == 0
        assert "warning" in report.format()

    def test_verbose_format_includes_notes_and_infos(self):
        report = CheckReport(pass_name="v")
        report.note("analysed 3 things")
        report.add("X003", Severity.INFO, "somewhere", "fyi")
        assert "analysed 3 things" in report.format(verbose=True)
        assert "fyi" in report.format(verbose=True)
        assert "fyi" not in report.format(verbose=False)
