"""Tests for the ``python -m repro.check`` command-line gate."""

import dataclasses
import json
import pathlib

import pytest

from repro.check.__main__ import (
    PASSES,
    main,
    run_cdg_pass,
    run_sanitize_pass,
    run_symbolic_pass,
)
from repro.check.registry import broken_configuration
from repro.check.report import (
    CheckReport,
    Finding,
    Severity,
    combined_exit_code,
)
from repro.routing import vc_assignment as vcs
from repro.routing.paths import dragonfly_path_grammar

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"


class TestExitCodes:
    def test_lint_and_invariants_pass_on_shipped_tree(self, capsys):
        assert main(["lint", "invariants"]) == 0
        out = capsys.readouterr().out
        assert "[lint] ok" in out
        assert "[invariants] ok" in out
        assert "all passes clean" in out

    def test_unknown_pass_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cdg", "nonsense"])
        assert excinfo.value.code == 2
        assert "unknown pass" in capsys.readouterr().err

    def test_list_shows_configurations(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "dragonfly/MIN+VAL+UGAL@figure7-3vc" in out
        assert "dragonfly-paper72" in out

    def test_list_shows_grammar_markers_and_scale_parameterisations(
        self, capsys
    ):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "[grammar]" in out
        assert "Symbolic scale parameterisations:" in out
        assert "dragonfly-balanced-h24" in out

    def test_symbolic_flag_runs_only_the_symbolic_pass(self, capsys):
        assert main(["--symbolic"]) == 0
        out = capsys.readouterr().out
        assert "[symbolic] ok" in out
        assert "[cdg]" not in out
        assert "[lint]" not in out

    def test_symbolic_flag_rejects_positional_passes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--symbolic", "lint"])
        assert excinfo.value.code == 2
        assert "--symbolic" in capsys.readouterr().err


class TestExitCodeAudit:
    """An ERROR in *any* pass must reach the process exit code -- this
    is the contract CI relies on."""

    @pytest.mark.parametrize("pass_name", PASSES)
    def test_error_in_any_pass_fails_the_gate(
        self, monkeypatch, capsys, pass_name
    ):
        def dirty(**_kwargs):
            report = CheckReport(pass_name=pass_name)
            report.add(
                "X999", Severity.ERROR, "somewhere", "planted failure"
            )
            return report

        monkeypatch.setattr(
            f"repro.check.__main__.run_{pass_name}_pass", dirty
        )
        assert main([pass_name]) == 1
        out = capsys.readouterr().out
        assert "X999" in out
        assert "FAILED" in out

    @pytest.mark.parametrize("pass_name", PASSES)
    def test_clean_pass_exits_zero(self, monkeypatch, capsys, pass_name):
        monkeypatch.setattr(
            f"repro.check.__main__.run_{pass_name}_pass",
            lambda **_kwargs: CheckReport(pass_name=pass_name),
        )
        assert main([pass_name]) == 0
        assert "all passes clean" in capsys.readouterr().out

    def test_failing_sanitize_fixture_fails_the_gate(
        self, monkeypatch, capsys
    ):
        """--sanitize-fixture findings join the combined exit code even
        when every static pass is clean."""
        monkeypatch.setattr(
            "repro.check.__main__.run_lint_pass",
            lambda **_kwargs: CheckReport(pass_name="lint"),
        )
        assert main(["lint", "--sanitize-fixture", "no_such_fixture"]) == 1
        out = capsys.readouterr().out
        assert "SAN000" in out
        assert "FAILED" in out


class TestCdgGate:
    def test_broken_assignment_fails_the_gate_with_counterexample(
        self, monkeypatch, capsys
    ):
        """A configuration that *claims* deadlock freedom but has a
        cyclic CDG must exit nonzero and print the cycle."""
        lying = dataclasses.replace(
            broken_configuration(), expect_deadlock_free=True
        )
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [lying]
        )
        assert main(["cdg"]) == 1
        out = capsys.readouterr().out
        assert "CDG001" in out
        assert "CYCLIC" in out or "counterexample" in out
        assert "waits for" in out
        assert "FAILED" in out

    def test_demo_broken_reports_cycle_without_failing(self, monkeypatch, capsys):
        """The documented negative control is evidence, not a failure."""
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: []
        )
        assert main(["cdg", "--demo-broken", "-v"]) == 0
        out = capsys.readouterr().out
        assert "CDG002" in out
        assert "expected counterexample" in out

    def test_rotted_negative_control_is_an_error(self, monkeypatch):
        """If the negative control certifies clean, the demo has rotted
        and the gate must say so."""
        # A config that IS deadlock-free while claiming to deadlock.
        from repro.check.registry import default_configurations

        good = default_configurations()[0]
        rotted = dataclasses.replace(good, expect_deadlock_free=False)
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [rotted]
        )
        report = run_cdg_pass()
        assert not report.ok
        assert any(f.code == "CDG003" for f in report.errors)


class TestSymbolicGate:
    def test_lying_grammar_fails_with_symbolic_counterexample(
        self, monkeypatch, capsys
    ):
        """A configuration claiming deadlock freedom whose grammar is
        cyclic must exit nonzero and print the class cycle."""
        lying = dataclasses.replace(
            broken_configuration(), expect_deadlock_free=True
        )
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [lying]
        )
        assert main(["symbolic"]) == 1
        out = capsys.readouterr().out
        assert "SYM001" in out
        assert "waits for" in out
        assert "FAILED" in out

    def test_demo_broken_reports_symbolic_cycle_without_failing(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: []
        )
        assert main(["symbolic", "--demo-broken", "-v"]) == 0
        out = capsys.readouterr().out
        assert "SYM002" in out
        assert "expected symbolic counterexample" in out

    def test_rotted_negative_control_is_sym003(self, monkeypatch):
        from repro.check.registry import default_configurations

        rotted = dataclasses.replace(
            default_configurations()[0], expect_deadlock_free=False
        )
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [rotted]
        )
        report = run_symbolic_pass()
        assert not report.ok
        assert any(f.code == "SYM003" for f in report.errors)

    def test_drifted_grammar_is_caught_by_the_harness(self, monkeypatch):
        """A grammar that no longer matches its routes (here: the
        collapsed grammar attached to a deadlock-free configuration)
        trips both the certification (SYM001) and the symbolic-vs-
        concrete cross-check (SYM005)."""
        from repro.check.registry import default_configurations

        drifted = dataclasses.replace(
            default_configurations()[0],
            grammar=lambda: dragonfly_path_grammar(vcs.COLLAPSED_TWO_VC),
        )
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [drifted]
        )
        report = run_symbolic_pass()
        assert not report.ok
        codes = {f.code for f in report.errors}
        assert "SYM001" in codes
        assert "SYM005" in codes

    def test_blown_scale_budget_is_sym004(self, monkeypatch):
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: []
        )
        monkeypatch.setattr(
            "repro.check.__main__.SCALE_BUDGET_SECONDS", 0.0
        )
        report = run_symbolic_pass()
        assert any(f.code == "SYM004" for f in report.errors)

    def test_grammarless_configuration_is_skipped_not_failed(
        self, monkeypatch
    ):
        from repro.check.registry import default_configurations

        bare = dataclasses.replace(
            default_configurations()[0], grammar=None
        )
        monkeypatch.setattr(
            "repro.check.__main__.all_configurations", lambda: [bare]
        )
        report = run_symbolic_pass()
        assert report.ok
        assert any("skipped" in note for note in report.notes)


class TestSanitizeFixture:
    def test_missing_fixture_is_san000(self):
        report = run_sanitize_pass("no_such_fixture")
        assert not report.ok
        assert any(f.code == "SAN000" for f in report.errors)

    def test_fixture_resolved_by_path_reruns_clean(self):
        report = run_sanitize_pass(str(GOLDEN_DIR / "min_uniform.json"))
        assert report.ok, report.format(verbose=True)
        assert any("bit-identical" in note for note in report.notes)

    def test_divergence_from_pinned_results_is_san006(self, tmp_path):
        fixture = json.loads(
            (GOLDEN_DIR / "min_uniform.json").read_text()
        )
        fixture["points"][0]["total_cycles"] += 1
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(fixture))
        report = run_sanitize_pass(str(tampered))
        assert not report.ok
        assert any(f.code == "SAN006" for f in report.errors)


class TestReportPlumbing:
    def test_combined_exit_code(self):
        clean = CheckReport(pass_name="a")
        dirty = CheckReport(
            pass_name="b",
            findings=[Finding("X001", Severity.ERROR, "somewhere", "boom")],
        )
        assert combined_exit_code([clean]) == 0
        assert combined_exit_code([clean, dirty]) == 1

    def test_warnings_do_not_gate(self):
        report = CheckReport(
            pass_name="w",
            findings=[Finding("X002", Severity.WARNING, "somewhere", "eh")],
        )
        assert report.ok
        assert combined_exit_code([report]) == 0
        assert "warning" in report.format()

    def test_verbose_format_includes_notes_and_infos(self):
        report = CheckReport(pass_name="v")
        report.note("analysed 3 things")
        report.add("X003", Severity.INFO, "somewhere", "fyi")
        assert "analysed 3 things" in report.format(verbose=True)
        assert "fyi" in report.format(verbose=True)
        assert "fyi" not in report.format(verbose=False)
