"""The table verifier certifies good tables and refutes sabotaged ones.

The acceptance-critical negative control lives here: a seeded table
edit that merges two VC classes (the canonical assignment's final local
VC folded onto the global VC) must be refuted with a printed
counterexample cycle, exactly as a bad controller push would be.
"""

import pytest

from repro.check.tables import (
    certify_tables,
    degraded_configurations,
    export_filename,
    run_tables_pass,
)
from repro.core.params import DragonflyParams
from repro.routing import vc_assignment as vcs
from repro.routing.tables import DragonflyLowering, TableEntry
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def tiny():
    return Dragonfly(DragonflyParams(p=1, a=2, h=1))


class TestCertifyHealthy:
    def test_tiny_dragonfly_certifies(self, tiny):
        lowering = DragonflyLowering(tiny, vcs.CANONICAL, include_nonminimal=True)
        cert = certify_tables("tiny", lowering)
        assert cert.ok, [f.format() for f in cert.findings]
        assert cert.num_entries > 0
        assert cert.num_pairs == tiny.fabric.num_routers * tiny.num_terminals
        assert "certified" in cert.summary()

    def test_degraded_scenario_certifies(self):
        degraded = degraded_configurations()
        assert degraded, "expected at least one fault scenario"
        cert = certify_tables(degraded[0].name, degraded[0].build())
        assert cert.ok, [f.format() for f in cert.findings]
        assert cert.tables is not None
        assert cert.tables.meta["detours"]


class TestCollapsedAssignmentRefuted:
    def test_collapsed_vcs_yield_cycle_with_provenance(self):
        topology = Dragonfly(DragonflyParams.paper_example_72())
        lowering = DragonflyLowering(
            topology, vcs.COLLAPSED_TWO_VC, include_nonminimal=True
        )
        cert = certify_tables("collapsed", lowering)
        assert cert.cyclic
        assert not cert.ok
        assert cert.cycle_description is not None
        assert "table provenance" in cert.cycle_description
        assert cert.summary().startswith("collapsed: REFUTED")


class _VcMergingLowering(DragonflyLowering):
    """A sabotaged lowering: every final-local VC is folded onto the
    global VC after compilation -- the canonical 3-VC ladder collapses
    to the known-deadlocking 2-VC one, via table edit alone."""

    def compile(self):
        tables = super().compile()
        merged = self.assignment.minimal_first_vc  # fold fv onto mf
        for router in list(tables.routers):
            for key in list(tables.routers[router]):
                slots = tables.routers[router][key]
                for via, entry in list(slots.items()):
                    if entry.out_vc == self.assignment.final_local_vc:
                        slots[via] = TableEntry(
                            out_port=entry.out_port,
                            out_vc=merged,
                            next_vc=entry.next_vc,
                            via=entry.via,
                        )
        return tables


class TestSeededTableEditRefuted:
    def test_merging_vc_classes_is_refuted_with_cycle(self):
        topology = Dragonfly(DragonflyParams.paper_example_72())
        lowering = _VcMergingLowering(
            topology, vcs.CANONICAL, include_nonminimal=True
        )
        cert = certify_tables("sabotaged", lowering)
        assert not cert.ok
        assert cert.cyclic, [f.format() for f in cert.findings]
        # The printed counterexample names concrete buffers and the
        # table entries that program them.
        assert "VC" in (cert.cycle_description or "")
        assert "table provenance" in (cert.cycle_description or "")


class TestRunTablesPass:
    def test_default_registry_gates_green(self):
        report = run_tables_pass()
        assert report.ok, report.format(verbose=True)
        assert any("certified" in note for note in report.notes)
        assert any("dragonfly-degraded" in note for note in report.notes)

    def test_demo_broken_reports_info_counterexample(self):
        report = run_tables_pass(demo_broken=True)
        assert report.ok, report.format(verbose=True)
        tbl006 = [f for f in report.findings if f.code == "TBL006"]
        assert len(tbl006) == 1
        assert "counterexample" in tbl006[0].message

    def test_rotted_negative_control_fails_gate(self, monkeypatch, tiny):
        from repro.check import registry

        healthy = registry.CheckConfiguration(
            name="rotted-control",
            description="documented as deadlocking but actually fine",
            claimed_vcs=3,
            build=lambda: (tiny.fabric, ()),
            expect_deadlock_free=False,
            tables=lambda: DragonflyLowering(
                tiny, vcs.CANONICAL, include_nonminimal=True
            ),
        )
        monkeypatch.setattr(registry, "broken_configuration", lambda: healthy)
        report = run_tables_pass(demo_broken=True)
        assert not report.ok
        assert any(f.code == "TBL007" for f in report.findings)

    def test_export_writes_versioned_json(self, tmp_path):
        report = run_tables_pass(export_dir=str(tmp_path))
        assert report.ok
        exported = sorted(tmp_path.glob("*.json"))
        assert len(exported) >= 11  # 10 registry configs + 1 degraded
        from repro.routing.tables import ForwardingTables

        tables = ForwardingTables.load(str(exported[0]))
        assert tables.num_entries() > 0


class TestExportFilename:
    def test_sanitises_registry_names(self):
        name = "dragonfly/MIN+VAL+UGAL@figure7-3vc"
        assert export_filename(name) == "dragonfly_MIN_VAL_UGAL_figure7-3vc.json"

    def test_no_leading_or_trailing_separators(self):
        assert export_filename("//weird name//") == "weird_name.json"
