"""Tests for the fault-parametric certifier: degraded grammar
composition, VC budgets, the symbolic-vs-concrete cross-check, and the
``faults`` pass of ``python -m repro.check``."""

import dataclasses
import time

import pytest

from repro.check.__main__ import main, run_faults_pass
from repro.check.registry import (
    degraded_crosscheck_configurations,
    degraded_family_configurations,
)
from repro.check.symbolic import (
    certify_grammar,
    degraded_cross_check,
    vc_budget_violations,
)
from repro.core.params import TopologyError
from repro.routing import vc_assignment as vcs
from repro.routing.grammar import (
    RELAY_ORDER,
    ChannelClass,
    DegradedPathGrammar,
    PathGrammar,
    RouteClass,
    Segment,
)
from repro.routing.paths import (
    degraded_dragonfly_grammar,
    dragonfly_path_grammar,
)
from repro.topology.faults import (
    ALL_FAULT_CLASSES,
    DEAD_LOCAL_LINK,
    DEAD_ROUTER,
    SEVERED_GROUP_PAIR,
)


class TestDegradedGrammarComposition:
    def test_no_relay_fault_leaves_segments_unwidened(self):
        composed = degraded_dragonfly_grammar(
            vcs.CANONICAL, (SEVERED_GROUP_PAIR,)
        ).compose()
        assert composed.name.endswith("+faults[severed-group-pair]")
        assert not any(
            segment.multi_hop
            for route_class in composed.route_classes
            for segment in route_class.segments
        )

    def test_relay_fault_widens_single_hop_local_segments(self):
        composed = degraded_dragonfly_grammar(
            vcs.CANONICAL, (DEAD_LOCAL_LINK,)
        ).compose()
        locals_ = [
            segment
            for route_class in composed.route_classes
            for segment in route_class.segments
            if segment.cls.kind == "local"
        ]
        assert locals_
        assert all(segment.multi_hop for segment in locals_)
        assert all(segment.order == RELAY_ORDER for segment in locals_)
        globals_ = [
            segment
            for route_class in composed.route_classes
            for segment in route_class.segments
            if segment.cls.kind == "global"
        ]
        assert not any(segment.multi_hop for segment in globals_)

    def test_widening_preserves_optionality(self):
        healthy = dragonfly_path_grammar(
            vcs.CANONICAL, include_nonminimal=False
        )
        composed = DegradedPathGrammar(
            healthy, (DEAD_ROUTER,)
        ).compose()
        for before, after in zip(
            healthy.route_classes, composed.route_classes
        ):
            for old, new in zip(before.segments, after.segments):
                assert new.optional == old.optional

    def test_already_multi_hop_segment_keeps_its_own_order(self):
        walk = Segment(
            ChannelClass("local", 0), multi_hop=True, order="dor dimension"
        )
        healthy = PathGrammar(
            name="synthetic", num_vcs=2,
            route_classes=(RouteClass("walk", (walk,)),),
        )
        composed = DegradedPathGrammar(healthy, (DEAD_LOCAL_LINK,)).compose()
        assert composed.route_classes[0].segments[0].order == "dor dimension"

    def test_empty_fault_classes_compose_to_the_healthy_grammar(self):
        degraded = degraded_dragonfly_grammar(vcs.CANONICAL, ())
        composed = degraded.compose()
        assert composed.name.endswith("+faults[none]")
        assert composed.route_classes == degraded.healthy.route_classes


class TestDegradedDragonflyGrammar:
    def test_healthy_base_is_minimal_only(self):
        degraded = degraded_dragonfly_grammar(vcs.CANONICAL)
        names = [rc.name for rc in degraded.healthy.route_classes]
        assert "valiant" not in names
        assert [rc.name for rc in degraded.detour_classes] == ["fault-detour"]

    def test_detour_rides_the_nonminimal_vc_ladder(self):
        degraded = degraded_dragonfly_grammar(vcs.CANONICAL)
        detour = degraded.detour_classes[0]
        global_vcs = [
            segment.cls.vc for segment in detour.segments
            if segment.cls.kind == "global"
        ]
        assert global_vcs == [
            vcs.CANONICAL.nonminimal_first_vc, vcs.CANONICAL.intermediate_vc,
        ]

    def test_severed_pair_requires_nonminimal_ladder(self):
        with pytest.raises(TopologyError, match="no non-minimal VC ladder"):
            degraded_dragonfly_grammar(
                vcs.MINIMAL_TWO_VC, (SEVERED_GROUP_PAIR,)
            )

    def test_relay_only_faults_work_without_nonminimal_ladder(self):
        degraded = degraded_dragonfly_grammar(
            vcs.MINIMAL_TWO_VC, (DEAD_LOCAL_LINK, DEAD_ROUTER)
        )
        assert degraded.detour_classes == ()
        assert certify_grammar("relay-only", degraded.compose()).ok

    def test_non_fault_class_rejected(self):
        with pytest.raises(TypeError, match="not a FaultClass"):
            degraded_dragonfly_grammar(
                vcs.CANONICAL, ("severed-group-pair",)
            )


class TestVcBudget:
    def test_canonical_degraded_grammar_fits_the_budget(self):
        grammar = degraded_dragonfly_grammar(vcs.CANONICAL).compose()
        assert vc_budget_violations(grammar) == []

    def test_overflowing_class_is_reported_by_name(self):
        grammar = PathGrammar(
            name="synthetic", num_vcs=3,
            route_classes=(RouteClass(
                "greedy", (Segment(ChannelClass("global", 5)),)
            ),),
        )
        violations = vc_budget_violations(grammar)
        assert len(violations) == 1
        assert "global@VC5" in violations[0]
        assert "VCs 0..2" in violations[0]


class TestFamilyCertification:
    def test_canonical_degraded_family_is_deadlock_free(self):
        grammar = degraded_dragonfly_grammar(
            vcs.CANONICAL, ALL_FAULT_CLASSES
        ).compose()
        certification = certify_grammar("degraded", grammar)
        assert certification.ok
        # Relay widening adds witnessed local self-edges, not failures.
        assert certification.witnessed

    def test_vc_reuse_family_is_refuted(self):
        grammar = degraded_dragonfly_grammar(
            vcs.DETOUR_VC_REUSE, (SEVERED_GROUP_PAIR,)
        ).compose()
        certification = certify_grammar("vc-reuse", grammar)
        assert not certification.ok
        assert "waits for" in certification.cycle_description

    def test_table2_parameterisations_registered_and_fast(self):
        scale = [
            family for family in degraded_family_configurations()
            if family.num_terminals is not None
        ]
        assert {family.num_terminals for family in scale} == {
            262_656, 1_328_256,
        }
        for family in scale:
            start = time.perf_counter()
            certification = certify_grammar(
                family.name, family.degraded().compose()
            )
            elapsed = time.perf_counter() - start
            assert certification.ok
            assert elapsed < 1.0


class TestDegradedCrossCheck:
    def test_every_enumerable_configuration_agrees(self):
        for configuration in degraded_crosscheck_configurations():
            check = degraded_cross_check(
                configuration.name, configuration.build()
            )
            assert check.agrees, check.summary()
            assert check.symbolic.ok == configuration.expect_deadlock_free

    def test_negative_control_refuted_by_both_with_cycles(self):
        negative = next(
            configuration
            for configuration in degraded_crosscheck_configurations()
            if not configuration.expect_deadlock_free
        )
        check = degraded_cross_check(negative.name, negative.build())
        assert not check.symbolic.ok
        assert check.concrete.cyclic
        assert "waits for" in check.symbolic.cycle_description
        # The concrete counterexample is provenance-annotated: it names
        # the table entries (and the detour legs' via-tags) that program
        # each channel of the cycle.
        assert check.concrete.cycle_description
        assert "programmed at router" in check.concrete.cycle_description
        assert "via ('link'" in check.concrete.cycle_description
        assert "DISAGREE" not in check.summary()


class TestFaultsPass:
    def test_shipped_tree_gates_green_with_negative_evidence(self):
        report = run_faults_pass()
        assert report.ok, report.format(verbose=True)
        infos = [f for f in report.findings if f.code == "FLT003"]
        # One refuted family, one refuted cross-check configuration.
        assert len(infos) == 2
        assert any("BOTH verifiers" in f.message for f in infos)
        assert any("N=262,656" in note for note in report.notes)
        assert any("N=1,328,256" in note for note in report.notes)

    def test_rotted_family_negative_control_is_flt004(self, monkeypatch):
        rotted = [
            dataclasses.replace(family, expect_deadlock_free=False)
            if family.expect_deadlock_free else family
            for family in degraded_family_configurations()
        ]
        monkeypatch.setattr(
            "repro.check.__main__.degraded_family_configurations",
            lambda: rotted[:1],
        )
        monkeypatch.setattr(
            "repro.check.__main__.degraded_crosscheck_configurations",
            lambda: [],
        )
        report = run_faults_pass()
        assert any(f.code == "FLT004" for f in report.errors)

    def test_unexpected_family_cycle_is_flt001(self, monkeypatch):
        lying = [
            dataclasses.replace(family, expect_deadlock_free=True)
            for family in degraded_family_configurations()
            if not family.expect_deadlock_free
        ]
        monkeypatch.setattr(
            "repro.check.__main__.degraded_family_configurations",
            lambda: lying,
        )
        monkeypatch.setattr(
            "repro.check.__main__.degraded_crosscheck_configurations",
            lambda: [],
        )
        report = run_faults_pass()
        errors = [f for f in report.errors if f.code == "FLT001"]
        assert errors
        assert "waits for" in errors[0].message

    def test_vc_budget_overflow_is_flt002(self, monkeypatch):
        greedy = PathGrammar(
            name="greedy", num_vcs=2,
            route_classes=(RouteClass(
                "greedy", (Segment(ChannelClass("global", 7)),)
            ),),
        )
        family = dataclasses.replace(
            degraded_family_configurations()[0],
            degraded=lambda: DegradedPathGrammar(greedy, ()),
        )
        monkeypatch.setattr(
            "repro.check.__main__.degraded_family_configurations",
            lambda: [family],
        )
        monkeypatch.setattr(
            "repro.check.__main__.degraded_crosscheck_configurations",
            lambda: [],
        )
        report = run_faults_pass()
        errors = [f for f in report.errors if f.code == "FLT002"]
        assert errors
        assert "global@VC7" in errors[0].message

    def test_blown_scale_budget_is_flt005(self, monkeypatch):
        monkeypatch.setattr(
            "repro.check.__main__.FAULT_SCALE_BUDGET_SECONDS", 0.0
        )
        monkeypatch.setattr(
            "repro.check.__main__.degraded_crosscheck_configurations",
            lambda: [],
        )
        report = run_faults_pass()
        assert any(f.code == "FLT005" for f in report.errors)

    def test_verifier_disagreement_is_flt006(self, monkeypatch):
        """A degraded grammar that no longer matches the recompiled
        tables must trip the cross-check, exactly like SYM005."""
        real = degraded_cross_check

        def drifted(name, lowering):
            check = real(name, lowering)
            return dataclasses.replace(
                check,
                symbolic=dataclasses.replace(
                    check.symbolic, ok=not check.symbolic.ok
                ),
            )

        monkeypatch.setattr(
            "repro.check.__main__.degraded_family_configurations",
            lambda: [],
        )
        monkeypatch.setattr(
            "repro.check.__main__.degraded_cross_check", drifted
        )
        report = run_faults_pass()
        errors = [f for f in report.errors if f.code == "FLT006"]
        assert len(errors) == len(degraded_crosscheck_configurations())
        assert "no longer matches" in errors[0].message


class TestFaultsCli:
    def test_faults_flag_runs_only_the_faults_pass(self, capsys):
        assert main(["--faults"]) == 0
        out = capsys.readouterr().out
        assert "[faults] ok" in out
        assert "[cdg]" not in out
        assert "[lint]" not in out

    def test_verbose_output_prints_both_counterexamples(self, capsys):
        assert main(["--faults", "-v"]) == 0
        out = capsys.readouterr().out
        assert "FLT003" in out
        assert "symbolic counterexample:" in out
        assert "concrete table-level counterexample:" in out
        assert "deadlock-free for the whole family" in out

    def test_faults_flag_rejects_positional_passes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--faults", "lint"])
        assert excinfo.value.code == 2
        assert "--faults" in capsys.readouterr().err

    def test_faults_flag_rejects_other_shorthands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--faults", "--symbolic"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--symbolic and --faults" in err

    def test_list_shows_degraded_sections(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "Degraded families (symbolic, fault-parametric):" in out
        assert "dragonfly-degraded-family@figure7-3vc" in out
        assert "Degraded cross-check configurations:" in out
        assert "detour-vc-reuse (negative control)" in out
