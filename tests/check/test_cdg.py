"""Tests for the channel-dependency-graph deadlock-freedom certifier."""

import networkx as nx
import pytest

from repro.check.cdg import (
    cdg_from_traces,
    certify,
    describe_cycle,
    dragonfly_traces,
    find_counterexample,
    max_vc_used,
)
from repro.check.registry import (
    all_configurations,
    broken_configuration,
    default_configurations,
    register,
    _EXTRA,
)
from repro.routing import vc_assignment as vcs


class TestCanonicalAssignment:
    """Positive certification: the paper's Figure 7 assignment is safe."""

    def test_tiny_dragonfly_is_deadlock_free(self, tiny_dragonfly):
        traces = list(dragonfly_traces(tiny_dragonfly, vcs.CANONICAL))
        certification = certify("tiny", tiny_dragonfly.fabric, traces)
        assert certification.ok
        assert certification.cycle is None
        assert certification.cycle_description is None
        assert certification.num_routes == len(traces)
        assert certification.num_edges > 0

    def test_paper72_dragonfly_is_deadlock_free(self, paper72_dragonfly):
        certification = certify(
            "paper72",
            paper72_dragonfly.fabric,
            dragonfly_traces(paper72_dragonfly, vcs.CANONICAL),
        )
        assert certification.ok
        # Every source router x destination terminal is covered at least
        # once (non-minimal variants add more).
        assert certification.num_routes >= (
            paper72_dragonfly.fabric.num_routers
            * paper72_dragonfly.num_terminals
        )

    def test_traces_respect_the_claimed_vc_budget(self, paper72_dragonfly):
        traces = list(dragonfly_traces(paper72_dragonfly, vcs.CANONICAL))
        assert max_vc_used(traces) < vcs.CANONICAL.num_vcs


class TestMinimalTwoVc:
    """Minimal-only routing needs just 2 VCs (Section 4.4)."""

    def test_minimal_only_two_vcs_suffice(self, paper72_dragonfly):
        traces = list(dragonfly_traces(
            paper72_dragonfly, vcs.MINIMAL_TWO_VC, include_nonminimal=False
        ))
        certification = certify("min-2vc", paper72_dragonfly.fabric, traces)
        assert certification.ok
        assert max_vc_used(traces) < 2

    def test_nonminimal_suppressed_by_assignment(self, paper72_dragonfly):
        """An assignment that documents minimal-only never emits Valiant
        routes even when the enumerator is asked for them."""
        forced = list(dragonfly_traces(
            paper72_dragonfly, vcs.MINIMAL_TWO_VC, include_nonminimal=True
        ))
        minimal = list(dragonfly_traces(
            paper72_dragonfly, vcs.MINIMAL_TWO_VC, include_nonminimal=False
        ))
        assert len(forced) == len(minimal)


class TestCollapsedAssignmentCounterexample:
    """Negative certification: collapsing to 2 VCs with non-minimal
    routing must produce a *reported* cycle, not a crash."""

    @pytest.fixture(scope="class")
    def collapsed(self, paper72_dragonfly):
        return certify(
            "collapsed",
            paper72_dragonfly.fabric,
            dragonfly_traces(paper72_dragonfly, vcs.COLLAPSED_TWO_VC),
        )

    def test_certification_fails(self, collapsed):
        assert not collapsed.ok

    def test_counterexample_cycle_is_concrete(self, collapsed, paper72_dragonfly):
        assert collapsed.cycle, "a failing proof must carry its cycle"
        fabric = paper72_dragonfly.fabric
        for channel_index, vc in collapsed.cycle:
            assert 0 <= channel_index < len(fabric.channels)
            assert 0 <= vc < vcs.COLLAPSED_TWO_VC.num_vcs
        # Consecutive cycle entries must be physically adjacent: the
        # holding channel ends where the requested channel begins.
        for i, (channel_index, _) in enumerate(collapsed.cycle):
            nxt_index, _ = collapsed.cycle[(i + 1) % len(collapsed.cycle)]
            holding = fabric.channels[channel_index]
            requested = fabric.channels[nxt_index]
            assert holding.dst.router == requested.src.router

    def test_counterexample_is_rendered(self, collapsed):
        assert collapsed.cycle_description
        assert "waits for" in collapsed.cycle_description
        assert "CYCLIC" in collapsed.summary()

    def test_broken_registry_entry_matches(self, collapsed):
        configuration = broken_configuration()
        assert not configuration.expect_deadlock_free
        fabric, traces = configuration.build()
        assert not certify(configuration.name, fabric, traces).ok


class TestCdgConstruction:
    def test_ejection_hop_holds_no_buffer(self, tiny_dragonfly):
        """Terminal ports must not appear in the CDG: ejection consumes
        no network buffer and would otherwise fake dependencies."""
        graph, _ = cdg_from_traces(
            tiny_dragonfly.fabric,
            dragonfly_traces(tiny_dragonfly, vcs.CANONICAL),
        )
        for channel_index, _ in graph.nodes:
            channel = tiny_dragonfly.fabric.channels[channel_index]
            assert not tiny_dragonfly.fabric.is_terminal_port(
                channel.src.router, channel.src.port
            )

    def test_find_counterexample_on_hand_built_cycle(self):
        graph = nx.DiGraph()
        graph.add_edge((0, 0), (1, 0))
        graph.add_edge((1, 0), (2, 0))
        graph.add_edge((2, 0), (0, 0))
        cycle = find_counterexample(graph)
        assert cycle is not None
        assert sorted(cycle) == [(0, 0), (1, 0), (2, 0)]

    def test_find_counterexample_none_on_dag(self):
        graph = nx.DiGraph()
        graph.add_edge((0, 0), (1, 0))
        graph.add_edge((1, 0), (2, 1))
        assert find_counterexample(graph) is None

    def test_describe_cycle_names_every_buffer(self, tiny_dragonfly):
        fabric = tiny_dragonfly.fabric
        cycle = [(0, 0), (1, 1)]
        text = describe_cycle(fabric, cycle)
        assert text.count("waits for") == 2
        assert "VC0" in text and "VC1" in text


class TestRegistry:
    def test_default_configurations_all_certify(self):
        for configuration in default_configurations():
            fabric, traces = configuration.build()
            traces = list(traces)
            certification = certify(configuration.name, fabric, traces)
            assert certification.ok == configuration.expect_deadlock_free, (
                configuration.name
            )
            assert max_vc_used(traces) < configuration.claimed_vcs, (
                f"{configuration.name} exceeds its claimed VC budget"
            )

    def test_register_extends_all_configurations(self):
        baseline = len(all_configurations())
        register(broken_configuration())
        try:
            assert len(all_configurations()) == baseline + 1
        finally:
            _EXTRA.clear()
