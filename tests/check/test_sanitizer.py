"""Tests for the runtime flit/credit conservation sanitizer.

Three layers: the audit functions on a finished simulator whose state is
deliberately corrupted (each conservation law must name its own finding
code), the periodic in-run hook (a corruption planted at cycle T must
surface within one stride of T), and the behaviour-preservation contract
(every golden fixture re-simulated under ``REPRO_SANITIZE=1`` stays
bit-identical with zero findings).
"""

import json
import pathlib

import pytest

from repro.check.sanitizer import (
    DEFAULT_STRIDE,
    ENV_ENABLE,
    ENV_STRIDE,
    SanitizerError,
    SimulatorSanitizer,
    audit_simulator,
    sanitizer_enabled,
    sanitizer_from_env,
    stride_from_env,
    structural_findings,
)
from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator, SimulatorStateError
from repro.network.sweep import load_sweep
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"
GOLDEN_FIXTURES = sorted(path.stem for path in GOLDEN_DIR.glob("*.json"))


def make_simulator(topology, routing="MIN", pattern="uniform_random", **kwargs):
    defaults = dict(
        load=0.2, warmup_cycles=100, measure_cycles=100, drain_max_cycles=2000
    )
    defaults.update(kwargs)
    config = SimulationConfig(**defaults)
    return Simulator(
        topology,
        make_routing(routing),
        make_pattern(pattern, topology, seed=config.seed + 17),
        config,
    )


def first_network_out_idx(sim):
    """The flat output-VC slot of the first wired network port."""
    for router in range(sim._num_routers):
        for port in sim._network_ports[router]:
            p_idx = router * sim._radix + port
            if sim._channel_info[p_idx] is not None:
                return p_idx * sim._vcs
    raise AssertionError("no wired network port")


def codes(findings):
    return {finding.code for finding in findings}


class TestEnvPlumbing:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        assert not sanitizer_enabled()
        assert sanitizer_from_env() is None

    def test_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "0")
        assert not sanitizer_enabled()
        assert sanitizer_from_env() is None

    def test_enabled_with_custom_stride(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.setenv(ENV_STRIDE, "7")
        sanitizer = sanitizer_from_env()
        assert sanitizer is not None
        assert sanitizer.stride == 7

    def test_default_stride(self, monkeypatch):
        monkeypatch.setenv(ENV_ENABLE, "1")
        monkeypatch.delenv(ENV_STRIDE, raising=False)
        assert stride_from_env() == DEFAULT_STRIDE

    @pytest.mark.parametrize("raw", ["nope", "0", "-3"])
    def test_bad_stride_is_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(ENV_STRIDE, raw)
        with pytest.raises(ValueError):
            stride_from_env()

    def test_simulator_attaches_sanitizer_when_enabled(
        self, monkeypatch, tiny_dragonfly
    ):
        monkeypatch.setenv(ENV_ENABLE, "1")
        sim = make_simulator(tiny_dragonfly)
        assert sim._sanitizer is not None

    def test_simulator_skips_sanitizer_when_disabled(
        self, monkeypatch, tiny_dragonfly
    ):
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        sim = make_simulator(tiny_dragonfly)
        assert sim._sanitizer is None


@pytest.fixture()
def finished(tiny_dragonfly):
    """A drained low-load run; its end state satisfies every law."""
    sim = make_simulator(tiny_dragonfly)
    sim.run()
    return sim


class TestAuditFindings:
    """Each law catches its own corruption, by code."""

    def test_clean_state_audits_clean(self, finished):
        assert audit_simulator(finished) == []

    def test_lost_credit_is_san002(self, finished):
        finished._credits[first_network_out_idx(finished)] -= 1
        assert "SAN002" in codes(audit_simulator(finished))

    def test_out_of_range_counter_is_san001(self, finished):
        finished._credits[first_network_out_idx(finished)] = (
            finished._depth + 1
        )
        assert "SAN001" in codes(audit_simulator(finished))

    def test_lost_flit_is_san003(self, finished):
        finished._flits_delivered -= 1
        findings = audit_simulator(finished)
        assert "SAN003" in codes(findings)
        # The message does the bookkeeping out loud.
        san003 = next(f for f in findings if f.code == "SAN003")
        assert "delivered" in san003.message

    def test_phantom_packet_is_san003(self, finished):
        finished._packet_counter += 1
        assert "SAN003" in codes(audit_simulator(finished))

    def test_corrupted_active_mask_is_san004(self, finished):
        finished._active_mask[0] ^= 1
        findings = audit_simulator(finished)
        assert "SAN004" in codes(findings)

    def test_corrupted_pending_counter_is_san004(self, finished):
        finished._pending[0] += 1
        assert "SAN004" in codes(audit_simulator(finished))

    def test_stranded_overflow_entry_is_san005(self, finished):
        finished._credit_overflow[finished.now] = [(0, 0)]
        findings = audit_simulator(finished)
        assert "SAN005" in codes(findings)
        assert any("stranded" in f.message for f in findings)

    def test_empty_overflow_batch_is_san005(self, finished):
        finished._credit_overflow[finished.now + 100] = []
        assert "SAN005" in codes(audit_simulator(finished))

    def test_out_of_range_credit_event_is_san005(self, finished):
        slots = finished._num_routers * finished._rv
        finished._credit_ring[0].append((slots + 5, 0))
        assert "SAN005" in codes(audit_simulator(finished))

    def test_structural_subset_skips_conservation_laws(self, finished):
        """check_invariants() must stay callable mid-cycle: the full
        credit law does not hold between phases, so the structural
        subset must not include it."""
        finished._credits[first_network_out_idx(finished)] -= 1
        assert structural_findings(finished) == []
        assert "SAN002" in codes(audit_simulator(finished))

    def test_check_invariants_raises_simulator_state_error(self, finished):
        finished._active_mask[0] ^= 1
        with pytest.raises(SimulatorStateError) as excinfo:
            finished.check_invariants()
        assert "SAN004" in str(excinfo.value)

    def test_sanitizer_error_carries_findings(self, finished):
        finished._flits_delivered -= 1
        with pytest.raises(SanitizerError) as excinfo:
            SimulatorSanitizer(stride=1).audit(finished)
        assert excinfo.value.findings
        assert "SAN003" in codes(excinfo.value.findings)
        assert "SAN003" in str(excinfo.value)


class TestStrideLocalisation:
    def test_clean_run_audits_every_cycle(self, tiny_dragonfly):
        sim = make_simulator(tiny_dragonfly)
        sim._sanitizer = SimulatorSanitizer(stride=1)
        result = sim.run()
        assert result.drained
        assert audit_simulator(sim) == []

    @pytest.mark.parametrize("stride", [1, 8])
    def test_planted_corruption_surfaces_within_one_stride(
        self, tiny_dragonfly, stride
    ):
        """A credit leaked at cycle 50 must abort the run by the next
        audit point -- the error is localised to its stride."""
        corrupt_at = 50
        sim = make_simulator(tiny_dragonfly)
        sim._sanitizer = SimulatorSanitizer(stride=stride)
        real_switch = sim._switch

        def corrupting_switch():
            real_switch()
            if sim.now == corrupt_at:
                sim._credits[first_network_out_idx(sim)] -= 1

        sim._switch = corrupting_switch
        with pytest.raises(SanitizerError) as excinfo:
            sim.run()
        assert "SAN002" in codes(excinfo.value.findings)
        assert corrupt_at <= sim.now <= corrupt_at + stride

    def test_maybe_audit_respects_the_stride(self, finished):
        finished._flits_delivered -= 1
        sanitizer = SimulatorSanitizer(stride=4)
        sanitizer.maybe_audit(finished, 3)  # off-stride: no audit
        with pytest.raises(SanitizerError):
            sanitizer.maybe_audit(finished, 4)

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulatorSanitizer(stride=0)


class TestGoldenFixturesSanitized:
    """Acceptance: every golden fixture re-simulates under the sanitizer
    with zero findings and bit-identical results."""

    @pytest.mark.parametrize("fixture_name", GOLDEN_FIXTURES)
    def test_fixture_is_clean_and_bit_identical(
        self, monkeypatch, fixture_name
    ):
        fixture = json.loads(
            (GOLDEN_DIR / f"{fixture_name}.json").read_text()
        )
        topology = Dragonfly(DragonflyParams(**fixture["topology"]))
        config = SimulationConfig(**fixture["config"])
        monkeypatch.setenv(ENV_ENABLE, "1")
        points = load_sweep(
            topology,
            fixture["routing"],
            fixture["pattern"],
            fixture["loads"],
            config,
        )
        assert [point.result.to_dict() for point in points] == fixture["points"]
