"""Rendering contracts of :mod:`repro.check.report`.

The CLI's output is consumed both by humans and by CI log scrapers, so
the exact rendering -- status line, severity counts, which findings are
shown at which verbosity, multi-line counterexample preservation -- is
pinned here.
"""

from repro.check.report import (
    CheckReport,
    Finding,
    Severity,
    combined_exit_code,
)


class TestFindingFormat:
    def test_single_line(self):
        finding = Finding("TBL001", Severity.ERROR, "dragonfly/MIN", "cyclic")
        assert finding.format() == "dragonfly/MIN: error TBL001: cyclic"

    def test_severity_labels(self):
        assert Severity.INFO.label() == "info"
        assert Severity.WARNING.label() == "warning"
        assert Severity.ERROR.label() == "error"

    def test_multiline_counterexample_message_is_preserved(self):
        # Cycle counterexamples (CDG001/TBL001) carry a multi-line
        # rendering in the message; format() must not collapse it.
        cycle = "counterexample cycle:\n  buffer A\n  buffer B"
        finding = Finding("TBL001", Severity.ERROR, "cfg", cycle)
        formatted = finding.format()
        assert "buffer A" in formatted
        assert formatted.count("\n") == 2


class TestCheckReportFormat:
    def make_report(self):
        report = CheckReport("tables")
        report.note("certified 11 configurations")
        report.add("TBL002", Severity.ERROR, "cfg-a", "unreachable pair")
        report.add("TBL006", Severity.INFO, "cfg-b", "expected counterexample")
        report.add("TBL003", Severity.WARNING, "cfg-c", "grammar mismatch")
        return report

    def test_empty_report_is_ok_with_zero_counts(self):
        report = CheckReport("tables")
        assert report.ok
        assert report.errors == []
        text = report.format()
        assert text == "[tables] ok (0 errors, 0 warnings, 0 infos)"

    def test_failed_status_and_counts(self):
        text = self.make_report().format()
        assert text.splitlines()[0] == (
            "[tables] FAILED (1 error, 1 warning, 1 info)"
        )

    def test_count_pluralisation(self):
        report = CheckReport("p")
        for location in ("a", "b"):
            report.add("X001", Severity.ERROR, location, "boom")
        assert "2 errors" in report.format()

    def test_non_verbose_hides_info_and_notes(self):
        text = self.make_report().format(verbose=False)
        assert "expected counterexample" not in text
        assert "certified 11 configurations" not in text
        assert "unreachable pair" in text
        assert "grammar mismatch" in text

    def test_verbose_shows_notes_then_all_findings_in_order(self):
        lines = self.make_report().format(verbose=True).splitlines()
        assert lines[1] == "  certified 11 configurations"
        codes = [line.split(":")[1].strip() for line in lines[2:]]
        assert codes == ["error TBL002", "info TBL006", "warning TBL003"]

    def test_extend_and_ok_reflect_error_findings_only(self):
        report = CheckReport("p")
        report.extend([
            Finding("X001", Severity.INFO, "a", "fyi"),
            Finding("X002", Severity.WARNING, "b", "hmm"),
        ])
        assert report.ok
        report.extend([Finding("X003", Severity.ERROR, "c", "bad")])
        assert not report.ok
        assert [f.code for f in report.errors] == ["X003"]


class TestCombinedExitCode:
    def test_all_green(self):
        assert combined_exit_code([CheckReport("a"), CheckReport("b")]) == 0

    def test_any_error_fails(self):
        bad = CheckReport("b")
        bad.add("X001", Severity.ERROR, "cfg", "boom")
        assert combined_exit_code([CheckReport("a"), bad]) == 1

    def test_warnings_do_not_fail_the_gate(self):
        warn = CheckReport("w")
        warn.add("X001", Severity.WARNING, "cfg", "advisory")
        assert combined_exit_code([warn]) == 0

    def test_empty_report_list_is_green(self):
        assert combined_exit_code([]) == 0
