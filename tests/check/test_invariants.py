"""Tests for the topology invariant linter."""

import dataclasses

from repro.check.invariants import (
    audit_dragonfly,
    audit_fabric,
    audit_topology,
    default_topology_audits,
)
from repro.check.report import Severity
from repro.core.params import DragonflyParams
from repro.topology.dragonfly import Dragonfly


def errors(findings):
    return [f for f in findings if f.severity == Severity.ERROR]


def codes(findings):
    return {f.code for f in findings}


class TestShippedTopologiesAreClean:
    def test_every_registered_audit_passes(self):
        for name, build in default_topology_audits():
            findings = audit_topology(build())
            assert not errors(findings), (name, [f.format() for f in findings])

    def test_paper72_fixture_is_clean(self, paper72_dragonfly):
        assert not errors(audit_dragonfly(paper72_dragonfly))


class TestBalanceRule:
    def test_balanced_config_has_no_top003(self, paper72_dragonfly):
        assert "TOP003" not in codes(audit_dragonfly(paper72_dragonfly))

    def test_unbalanced_config_warns_but_does_not_gate(self):
        # a=2, 2p=2, 2h=4: global-channel starved, a legal configuration
        # the paper would call unbalanced.
        topology = Dragonfly(DragonflyParams(p=1, a=2, h=2, num_groups=3))
        findings = audit_dragonfly(topology)
        top003 = [f for f in findings if f.code == "TOP003"]
        assert top003, "unbalanced configuration must be flagged"
        assert all(f.severity < Severity.ERROR for f in top003)
        assert not errors(findings)

    def test_overprovisioned_config_is_only_informational(self):
        # a=4 >= 2h=2 and p=2 >= h=1: overprovisioned, not broken.
        topology = Dragonfly(DragonflyParams(p=2, a=4, h=1))
        top003 = [f for f in audit_dragonfly(topology) if f.code == "TOP003"]
        assert top003
        assert all(f.severity == Severity.INFO for f in top003)


class TestFabricTampering:
    """audit_fabric must catch structural corruption of the channel list."""

    def _fresh(self):
        return Dragonfly(DragonflyParams(p=1, a=2, h=1))

    def test_asymmetric_latency_is_detected(self):
        topology = self._fresh()
        fabric = topology.fabric
        victim = fabric.channels[0]
        fabric.channels[0] = dataclasses.replace(
            victim, latency=victim.latency + 7
        )
        findings = audit_fabric(fabric, "tampered")
        assert "TOP005" in codes(errors(findings))

    def test_odd_channel_count_is_detected(self):
        topology = self._fresh()
        fabric = topology.fabric
        fabric.channels.pop()
        findings = audit_fabric(fabric, "tampered")
        assert "TOP005" in codes(errors(findings))

    def test_clean_fabric_has_no_findings(self, tiny_dragonfly):
        assert not audit_fabric(tiny_dragonfly.fabric, "clean")


class TestDispatch:
    def test_unknown_topology_raises(self):
        try:
            audit_topology(object())
        except TypeError as error:
            assert "no invariant audit" in str(error)
        else:
            raise AssertionError("expected TypeError")
