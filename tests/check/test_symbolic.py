"""Tests for the symbolic channel-class deadlock certifier.

The symbolic pass certifies whole routing *families* from their path
grammars.  Soundness (symbolic-acyclic implies concrete-acyclic) is an
argument, not a test; what the suite pins is (a) the class-graph
construction rules, (b) that every shipped grammar certifies the way the
registry documents, (c) that the negative controls are refuted
*symbolically* with readable counterexamples, (d) scale and speed, and
(e) calibration: the symbolic verdict agrees with the concrete
enumerator on every instance small enough to enumerate.
"""

import dataclasses
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.cdg import certify, dragonfly_traces
from repro.check.registry import (
    broken_configuration,
    default_configurations,
    symbolic_scale_configurations,
)
from repro.check.symbolic import (
    certify_grammar,
    class_dependency_graph,
    cross_check,
    find_symbolic_counterexample,
    soundness_harness,
)
from repro.core.params import DragonflyParams
from repro.routing import vc_assignment as vcs
from repro.routing.fb_paths import fb_path_grammar
from repro.routing.grammar import ChannelClass, PathGrammar, RouteClass, Segment
from repro.routing.paths import dragonfly_path_grammar
from repro.routing.torus_routing import torus_path_grammar
from repro.routing.variant_paths import variant_path_grammar
from repro.topology.dragonfly import Dragonfly


def grammar_of(*route_classes):
    return PathGrammar(name="test", num_vcs=4, route_classes=route_classes)


A = ChannelClass("local", 0)
B = ChannelClass("local", 1)
C = ChannelClass("global", 0)


class TestClassGraphConstruction:
    """The dependency rules of docs/static-analysis.md, on hand-built
    grammars small enough to check edge by edge."""

    def test_adjacent_stages_depend(self):
        graph = class_dependency_graph(grammar_of(
            RouteClass("r", (Segment(A), Segment(B), Segment(C))),
        ))
        assert graph.has_edge(A, B)
        assert graph.has_edge(B, C)
        # B is mandatory, so a route can never hold A while requesting C.
        assert not graph.has_edge(A, C)

    def test_optional_stage_is_skippable(self):
        graph = class_dependency_graph(grammar_of(
            RouteClass("r", (Segment(A), Segment(B, optional=True), Segment(C))),
        ))
        assert graph.has_edge(A, B)
        assert graph.has_edge(A, C)
        assert graph.has_edge(B, C)

    def test_unwitnessed_multi_hop_is_refuted_as_self_cycle(self):
        certification = certify_grammar("walk", grammar_of(
            RouteClass("r", (Segment(A, multi_hop=True),)),
        ))
        assert not certification.ok
        assert certification.cycle == (A,)
        assert "revisits stage 0" in certification.cycle_description

    def test_order_witness_discharges_the_self_cycle(self):
        certification = certify_grammar("dor", grammar_of(
            RouteClass("r", (Segment(A, multi_hop=True, order="dim index"),)),
        ))
        assert certification.ok
        assert any("dim index" in note for note in certification.witnessed)

    def test_conflicting_orders_discard_the_witness(self):
        """Two route classes walking the same class along different
        orders could disagree about dependency direction: refuted."""
        certification = certify_grammar("conflict", grammar_of(
            RouteClass("r1", (Segment(A, multi_hop=True, order="rows"),)),
            RouteClass("r2", (Segment(A, multi_hop=True, order="columns"),)),
        ))
        assert not certification.ok

    def test_class_revisited_across_skippable_stage_is_cyclic(self):
        """A revisit spans two separate visits -- no single-walk order
        can witness it, even if every occurrence is single-hop."""
        certification = certify_grammar("revisit", grammar_of(
            RouteClass("r", (Segment(A), Segment(B, optional=True), Segment(A))),
        ))
        assert not certification.ok
        assert A in certification.cycle

    def test_two_class_cycle_is_found_across_route_classes(self):
        certification = certify_grammar("pair", grammar_of(
            RouteClass("ab", (Segment(A), Segment(B))),
            RouteClass("ba", (Segment(B), Segment(A))),
        ))
        assert not certification.ok
        assert set(certification.cycle) == {A, B}
        assert certification.cycle_description.count("waits for") == 2

    def test_find_counterexample_ignores_witnessed_self_edges_only(self):
        graph = class_dependency_graph(grammar_of(
            RouteClass("r", (
                Segment(A, multi_hop=True, order="dim index"),
                Segment(B),
            )),
        ))
        assert find_symbolic_counterexample(graph) is None


class TestDragonflyFamily:
    def test_canonical_assignment_certifies_whole_family(self):
        certification = certify_grammar(
            "dragonfly", dragonfly_path_grammar(vcs.CANONICAL)
        )
        assert certification.ok
        # Five classes regardless of (a, p, h, g): local/global on the
        # minimal VC, local/global on the Valiant VC, final local.
        assert certification.num_classes == 5
        assert certification.num_route_classes == 3
        assert "deadlock-free" in certification.summary()
        assert "whole family" in certification.summary()

    def test_minimal_only_two_vcs_certify(self):
        certification = certify_grammar(
            "min-2vc",
            dragonfly_path_grammar(vcs.MINIMAL_TWO_VC, include_nonminimal=False),
        )
        assert certification.ok
        assert certification.num_route_classes == 2

    def test_minimal_assignment_suppresses_nonminimal_routes(self):
        forced = dragonfly_path_grammar(
            vcs.MINIMAL_TWO_VC, include_nonminimal=True
        )
        assert len(forced.route_classes) == 2

    def test_collapsed_assignment_is_refuted_symbolically(self):
        certification = certify_grammar(
            "collapsed", dragonfly_path_grammar(vcs.COLLAPSED_TWO_VC)
        )
        assert not certification.ok
        description = certification.cycle_description
        assert "waits for" in description
        # The cycle is closed by the minimal route class re-entering
        # local@VC1 in the destination group after the global hop.
        assert "local@VC1" in description
        assert "global@VC1" in description
        assert "route class" in description

    def test_squashing_any_vc_out_of_canonical_is_refuted(self):
        """Dropping to 2 VCs by clamping (the generic way to break the
        Figure 7 assignment) must always be caught."""
        grammar = dragonfly_path_grammar(vcs.CANONICAL)
        squashed = PathGrammar(
            name="canonical-squashed",
            num_vcs=2,
            route_classes=tuple(
                RouteClass(rc.name, tuple(
                    dataclasses.replace(
                        segment,
                        cls=dataclasses.replace(
                            segment.cls, vc=min(segment.cls.vc, 1)
                        ),
                    )
                    for segment in rc.segments
                ))
                for rc in grammar.route_classes
            ),
        )
        certification = certify_grammar("squashed", squashed)
        assert not certification.ok
        assert "CYCLIC" in certification.summary()


class TestOtherFamilies:
    def test_variant_dor_walk_is_witnessed(self):
        certification = certify_grammar(
            "variant", variant_path_grammar(vcs.CANONICAL)
        )
        assert certification.ok
        assert any("DOR" in note for note in certification.witnessed)

    def test_flattened_butterfly_certifies(self):
        certification = certify_grammar("fb", fb_path_grammar())
        assert certification.ok
        assert certification.witnessed

    @pytest.mark.parametrize("include_nonminimal", [False, True])
    def test_torus_dateline_certifies(self, include_nonminimal):
        certification = certify_grammar(
            "torus", torus_path_grammar(2, include_nonminimal)
        )
        assert certification.ok
        assert any("dateline" in note for note in certification.witnessed)

    def test_torus_without_dateline_split_would_be_refuted(self):
        """The (phase, dim, crossed) roles are load-bearing: merging the
        pre- and post-dateline classes of a dimension closes a ring
        cycle the witness cannot discharge."""
        grammar = torus_path_grammar(2, include_nonminimal=False)
        merged = PathGrammar(
            name="torus-no-dateline-vcs",
            num_vcs=1,
            route_classes=tuple(
                RouteClass(rc.name, tuple(
                    dataclasses.replace(
                        segment,
                        cls=ChannelClass(
                            segment.cls.kind, 0,
                            segment.cls.role.replace("+dateline", ""),
                        ),
                    )
                    for segment in rc.segments
                ))
                for rc in grammar.route_classes
            ),
        )
        assert not certify_grammar("merged", merged).ok


class TestRegisteredGrammars:
    def test_every_default_configuration_has_a_grammar(self):
        for configuration in default_configurations():
            assert configuration.grammar is not None, configuration.name

    def test_every_registered_grammar_matches_its_claim(self):
        for configuration in default_configurations():
            certification = certify_grammar(
                configuration.name, configuration.grammar()
            )
            assert certification.ok == configuration.expect_deadlock_free, (
                configuration.name
            )

    def test_grammar_vcs_stay_inside_the_claimed_budget(self):
        for configuration in default_configurations():
            grammar = configuration.grammar()
            used = {cls.vc for cls in grammar.classes()}
            assert max(used) < configuration.claimed_vcs, configuration.name

    def test_broken_configuration_is_refuted(self):
        configuration = broken_configuration()
        certification = certify_grammar(
            configuration.name, configuration.grammar()
        )
        assert not certification.ok


class TestScale:
    """The point of the abstraction: Table 2 machines in microseconds."""

    def test_scale_configurations_cover_table2(self):
        terminals = sorted(
            scale.num_terminals for scale in symbolic_scale_configurations()
        )
        assert terminals[0] >= 256_000
        assert terminals[-1] >= 1_000_000

    def test_scale_certification_is_fast(self):
        start = time.perf_counter()
        for scale in symbolic_scale_configurations():
            certification = certify_grammar(scale.name, scale.grammar())
            assert certification.ok, scale.name
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0, f"scale certification took {elapsed:.2f}s"


class TestSoundnessHarness:
    """Calibration: symbolic and concrete verdicts must agree on every
    instance small enough to enumerate (the abstraction is sound by
    construction; agreement shows it is also *tight* on the registered
    grammars)."""

    def test_every_default_configuration_agrees(self):
        checks = soundness_harness()
        assert len(checks) == len(default_configurations()) + 1
        for check in checks:
            assert check.agrees, check.summary()
            assert "agree" in check.summary()

    def test_negative_control_is_cyclic_both_ways(self):
        check = cross_check(broken_configuration())
        assert check is not None
        assert not check.symbolic.ok
        assert not check.concrete.ok
        assert check.agrees

    def test_configuration_without_grammar_is_skipped(self):
        configuration = dataclasses.replace(
            default_configurations()[0], grammar=None
        )
        assert cross_check(configuration) is None

    def test_disagreement_is_loud_in_the_summary(self):
        check = cross_check(broken_configuration())
        lying = dataclasses.replace(
            check,
            symbolic=dataclasses.replace(check.symbolic, ok=True),
        )
        assert not lying.agrees
        assert "DISAGREE" in lying.summary()

    @settings(max_examples=20, deadline=None)
    @given(
        p=st.integers(1, 2),
        a=st.integers(2, 3),
        h=st.integers(1, 2),
        assignment=st.sampled_from(
            [vcs.CANONICAL, vcs.MINIMAL_TWO_VC, vcs.COLLAPSED_TWO_VC]
        ),
        include_nonminimal=st.booleans(),
    )
    def test_symbolic_agrees_with_concrete_on_random_shapes(
        self, p, a, h, assignment, include_nonminimal
    ):
        """Property form of the harness: for every small dragonfly shape
        and every shipped assignment, the family-level verdict equals
        the instance-level one."""
        topology = Dragonfly(DragonflyParams(p=p, a=a, h=h))
        concrete = certify(
            "concrete",
            topology.fabric,
            dragonfly_traces(topology, assignment, include_nonminimal),
        )
        symbolic = certify_grammar(
            "symbolic", dragonfly_path_grammar(assignment, include_nonminimal)
        )
        assert symbolic.ok == concrete.ok
