"""Tests for bulk-synchronous workloads and the batch injection mode."""

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import make_pattern
from repro.network.workloads import (
    ApplicationWorkload,
    CommunicationPhase,
    adversarial_neighbor,
    fft_transpose,
    global_reduce,
    run_workload,
    standard_workloads,
    stencil_exchange,
)
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


class TestBulkMode:
    def _run(self, df, routing="MIN", pattern="uniform_random", quota=10,
             **kwargs):
        config = SimulationConfig(
            packets_per_terminal=quota, drain_max_cycles=50_000, **kwargs
        )
        p = make_pattern(pattern, df, seed=3)
        return Simulator(df, make_routing(routing), p, config).run()

    def test_all_packets_delivered(self, df):
        result = self._run(df, quota=10)
        assert result.drained
        assert len(result.samples) == 10 * df.num_terminals

    def test_completion_time_scales_with_volume(self, df):
        small = self._run(df, quota=5)
        large = self._run(df, quota=20)
        assert large.total_cycles > 2 * small.total_cycles

    def test_adaptive_beats_minimal_on_adversarial_burst(self, df):
        minimal = self._run(df, routing="MIN", pattern="worst_case", quota=20)
        adaptive = self._run(df, routing="UGAL-L_CR", pattern="worst_case", quota=20)
        assert adaptive.total_cycles < 0.6 * minimal.total_cycles

    def test_rejects_zero_quota(self):
        with pytest.raises(ValueError):
            SimulationConfig(packets_per_terminal=0)

    def test_invariants_hold(self, df):
        config = SimulationConfig(packets_per_terminal=8, drain_max_cycles=20_000)
        pattern = make_pattern("worst_case", df, seed=4)
        simulator = Simulator(df, make_routing("UGAL-L_VCH"), pattern, config)
        simulator.run()
        simulator.check_invariants()


class TestPhaseValidation:
    def test_phase_rejects_zero_volume(self):
        with pytest.raises(ValueError):
            CommunicationPhase("x", "uniform_random", 0)

    def test_workload_rejects_empty(self):
        with pytest.raises(ValueError):
            ApplicationWorkload("empty", [])

    def test_total_volume(self):
        workload = stencil_exchange(volume=8)
        assert workload.total_packets_per_terminal == 24


class TestPredefinedWorkloads:
    def test_standard_list(self, df):
        workloads = standard_workloads(df.num_terminals)
        names = {w.name for w in workloads}
        assert names == {
            "stencil_exchange", "fft_transpose", "global_reduce",
            "adversarial_neighbor",
        }

    def test_fft_uses_transpose_when_square(self):
        workload = fft_transpose(num_terminals=64)
        assert any(p.pattern == "transpose" for p in workload.phases)

    def test_fft_falls_back_otherwise(self):
        workload = fft_transpose(num_terminals=72)
        assert all(p.pattern != "transpose" for p in workload.phases)


class TestRunWorkload:
    def test_phases_complete(self, df):
        result = run_workload(df, "UGAL-L_VCH", stencil_exchange(volume=4))
        assert result.completed
        assert len(result.phase_results) == 3
        assert result.total_cycles == sum(
            r.completion_cycles for r in result.phase_results
        )

    def test_adversarial_workload_prefers_adaptive(self, df):
        workload = adversarial_neighbor(volume=8)
        minimal = run_workload(df, "MIN", workload)
        adaptive = run_workload(df, "UGAL-L_CR", workload)
        assert adaptive.completed
        assert adaptive.total_cycles < minimal.total_cycles

    def test_summary_renders(self, df):
        result = run_workload(df, "MIN", global_reduce(volume=2))
        assert "global_reduce" in result.summary()

    def test_phase_latency_stats_populated(self, df):
        result = run_workload(df, "MIN", global_reduce(volume=2))
        for phase_result in result.phase_results:
            assert phase_result.avg_latency > 0
            assert phase_result.p99_latency >= phase_result.avg_latency * 0.5
