"""Regression test: same seed, same simulation, bit-identical results.

The simulator's reproducibility contract: every source of randomness
(injection, routing tie-breaks, traffic pattern) flows from
``SimulationConfig.seed``, so two runs with the same configuration must
produce identical per-packet latency samples.  This is what the REP001
lint rule (no unseeded ``random`` module calls) protects.
"""

import dataclasses

from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing


def run_once(topology, routing_name, seed):
    config = SimulationConfig(
        load=0.2,
        seed=seed,
        warmup_cycles=200,
        measure_cycles=300,
        drain_max_cycles=4000,
    )
    pattern = make_pattern("uniform_random", topology, seed=config.seed + 17)
    simulator = Simulator(
        topology, make_routing(routing_name), pattern, config
    )
    return simulator.run()


def sample_tuples(result):
    return [(s.latency, s.minimal) for s in result.samples]


class TestSeedDeterminism:
    def test_identical_seeds_give_identical_samples(self, paper72_dragonfly):
        first = run_once(paper72_dragonfly, "UGAL-L", seed=12345)
        second = run_once(paper72_dragonfly, "UGAL-L", seed=12345)
        assert first.samples, "the run must measure something"
        assert sample_tuples(first) == sample_tuples(second)
        assert first.avg_latency == second.avg_latency
        assert first.accepted_load == second.accepted_load

    def test_different_seeds_diverge(self, paper72_dragonfly):
        """Guards against the degenerate 'deterministic because the seed
        is ignored' failure mode."""
        first = run_once(paper72_dragonfly, "UGAL-L", seed=1)
        second = run_once(paper72_dragonfly, "UGAL-L", seed=2)
        assert sample_tuples(first) != sample_tuples(second)

    def test_determinism_holds_for_valiant_routing(self, paper72_dragonfly):
        """VAL draws an intermediate group per packet -- the heaviest
        consumer of routing randomness."""
        first = run_once(paper72_dragonfly, "VAL", seed=777)
        second = run_once(paper72_dragonfly, "VAL", seed=777)
        assert sample_tuples(first) == sample_tuples(second)

    def test_dataclass_replace_preserves_determinism(self, paper72_dragonfly):
        """Configs rebuilt via dataclasses.replace (the experiment
        harness idiom) must not lose the seed."""
        base = SimulationConfig(
            load=0.2,
            seed=42,
            warmup_cycles=200,
            measure_cycles=300,
            drain_max_cycles=4000,
        )
        rebuilt = dataclasses.replace(base, load=0.2)
        results = []
        for config in (base, rebuilt):
            pattern = make_pattern(
                "uniform_random", paper72_dragonfly, seed=config.seed + 17
            )
            simulator = Simulator(
                paper72_dragonfly, make_routing("MIN"), pattern, config
            )
            results.append(simulator.run())
        assert sample_tuples(results[0]) == sample_tuples(results[1])
