"""Environment-variable parsing contracts for the sweep/sanitizer knobs.

Each ``REPRO_*`` variable must either parse to a sane value or fail
loudly with a :class:`ValueError` that names the offending variable --
a typo'd setting silently degrading to a default has bitten real
sweeps.
"""

import os

import pytest

from repro.check.sanitizer import DEFAULT_STRIDE, ENV_STRIDE, stride_from_env
from repro.network.cache import CACHE_ENV_VAR, SweepCache
from repro.network.parallel import WORKERS_ENV_VAR, SweepExecutor


class TestSanitizeStride:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(ENV_STRIDE, raising=False)
        assert stride_from_env() == DEFAULT_STRIDE

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv(ENV_STRIDE, "17")
        assert stride_from_env() == 17

    @pytest.mark.parametrize("raw", ["0", "-3", "garbage", "1.5", ""])
    def test_bad_values_raise_naming_variable(self, monkeypatch, raw):
        if raw == "":
            # Empty means unset, not an error.
            monkeypatch.setenv(ENV_STRIDE, raw)
            assert stride_from_env() == DEFAULT_STRIDE
            return
        monkeypatch.setenv(ENV_STRIDE, raw)
        with pytest.raises(ValueError, match=ENV_STRIDE):
            stride_from_env()


class TestSweepWorkers:
    def test_unset_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepExecutor.from_env().workers == 1

    @pytest.mark.parametrize("raw", ["0", "auto", "AUTO"])
    def test_auto_means_cpu_count(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepExecutor.from_env().workers == (os.cpu_count() or 1)

    def test_explicit_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepExecutor.from_env().workers == 3

    @pytest.mark.parametrize("raw", ["-1", "-8", "two", "1.5", "none"])
    def test_bad_values_raise_naming_variable(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            SweepExecutor.from_env()


class TestSweepCache:
    def test_unset_disables_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepCache.from_env() is None

    def test_blank_disables_cache(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "   ")
        assert SweepCache.from_env() is None

    def test_directory_accepted(self, monkeypatch, tmp_path):
        target = tmp_path / "cache"
        monkeypatch.setenv(CACHE_ENV_VAR, str(target))
        cache = SweepCache.from_env()
        assert cache is not None
        assert cache.directory == target

    def test_existing_file_rejected_naming_variable(self, monkeypatch, tmp_path):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("x")
        monkeypatch.setenv(CACHE_ENV_VAR, str(bogus))
        with pytest.raises(ValueError, match=CACHE_ENV_VAR):
            SweepCache.from_env()
