"""Environment-variable parsing contracts for the sweep/sanitizer knobs.

Each ``REPRO_*`` variable must either parse to a sane value or fail
loudly with a :class:`ValueError` that names the offending variable --
a typo'd setting silently degrading to a default has bitten real
sweeps.
"""

import os

import pytest

from repro.check.sanitizer import DEFAULT_STRIDE, ENV_STRIDE, stride_from_env
from repro.network.backend import (
    BACKEND_ENV_VAR,
    backend_from_env,
    resolve_backend,
)
from repro.network.cache import CACHE_ENV_VAR, SweepCache
from repro.network.parallel import WORKERS_ENV_VAR, SweepExecutor
from repro.service.client import SERVICE_ENV_VAR, service_root_from_env
from repro.service.scheduler import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_UNIT_TIMEOUT,
    HEARTBEAT_ENV_VAR,
    RETRIES_ENV_VAR,
    TIMEOUT_ENV_VAR,
    SchedulerOptions,
)


class TestSanitizeStride:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(ENV_STRIDE, raising=False)
        assert stride_from_env() == DEFAULT_STRIDE

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv(ENV_STRIDE, "17")
        assert stride_from_env() == 17

    @pytest.mark.parametrize("raw", ["0", "-3", "garbage", "1.5", ""])
    def test_bad_values_raise_naming_variable(self, monkeypatch, raw):
        if raw == "":
            # Empty means unset, not an error.
            monkeypatch.setenv(ENV_STRIDE, raw)
            assert stride_from_env() == DEFAULT_STRIDE
            return
        monkeypatch.setenv(ENV_STRIDE, raw)
        with pytest.raises(ValueError, match=ENV_STRIDE):
            stride_from_env()


class TestSweepWorkers:
    def test_unset_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepExecutor.from_env().workers == 1

    @pytest.mark.parametrize("raw", ["0", "auto", "AUTO"])
    def test_auto_means_cpu_count(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepExecutor.from_env().workers == (os.cpu_count() or 1)

    def test_explicit_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepExecutor.from_env().workers == 3

    @pytest.mark.parametrize("raw", ["-1", "-8", "two", "1.5", "none"])
    def test_bad_values_raise_naming_variable(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV_VAR, raw)
        with pytest.raises(ValueError, match=WORKERS_ENV_VAR):
            SweepExecutor.from_env()


class TestSweepCache:
    def test_unset_disables_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert SweepCache.from_env() is None

    def test_blank_disables_cache(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "   ")
        assert SweepCache.from_env() is None

    def test_directory_accepted(self, monkeypatch, tmp_path):
        target = tmp_path / "cache"
        monkeypatch.setenv(CACHE_ENV_VAR, str(target))
        cache = SweepCache.from_env()
        assert cache is not None
        assert cache.directory == target

    def test_existing_file_rejected_naming_variable(self, monkeypatch, tmp_path):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("x")
        monkeypatch.setenv(CACHE_ENV_VAR, str(bogus))
        with pytest.raises(ValueError, match=CACHE_ENV_VAR):
            SweepCache.from_env()


class TestSweepServiceRoot:
    def test_unset_disables_service(self, monkeypatch):
        monkeypatch.delenv(SERVICE_ENV_VAR, raising=False)
        assert service_root_from_env() is None

    def test_blank_disables_service(self, monkeypatch):
        monkeypatch.setenv(SERVICE_ENV_VAR, "   ")
        assert service_root_from_env() is None

    def test_directory_accepted_even_before_it_exists(
        self, monkeypatch, tmp_path
    ):
        target = tmp_path / "svc"
        monkeypatch.setenv(SERVICE_ENV_VAR, str(target))
        assert service_root_from_env() == target

    def test_existing_file_rejected_naming_variable(self, monkeypatch, tmp_path):
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("x")
        monkeypatch.setenv(SERVICE_ENV_VAR, str(bogus))
        with pytest.raises(ValueError, match=SERVICE_ENV_VAR):
            service_root_from_env()


class TestSchedulerKnobs:
    def _clear(self, monkeypatch):
        for name in (
            WORKERS_ENV_VAR, TIMEOUT_ENV_VAR, RETRIES_ENV_VAR,
            HEARTBEAT_ENV_VAR,
        ):
            monkeypatch.delenv(name, raising=False)

    def test_unset_uses_defaults(self, monkeypatch):
        self._clear(monkeypatch)
        options = SchedulerOptions.from_env()
        assert options.workers == 1
        assert options.unit_timeout == DEFAULT_UNIT_TIMEOUT
        assert options.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert options.heartbeat_interval == DEFAULT_HEARTBEAT_INTERVAL

    def test_valid_values(self, monkeypatch):
        self._clear(monkeypatch)
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        monkeypatch.setenv(TIMEOUT_ENV_VAR, "120.5")
        monkeypatch.setenv(RETRIES_ENV_VAR, "5")
        monkeypatch.setenv(HEARTBEAT_ENV_VAR, "0.25")
        options = SchedulerOptions.from_env()
        assert options.workers == 4
        assert options.unit_timeout == 120.5
        assert options.max_attempts == 5
        assert options.heartbeat_interval == 0.25

    @pytest.mark.parametrize("raw", ["0", "-1", "garbage", "1.5s"])
    def test_bad_timeout_raises_naming_variable(self, monkeypatch, raw):
        self._clear(monkeypatch)
        monkeypatch.setenv(TIMEOUT_ENV_VAR, raw)
        with pytest.raises(ValueError, match=TIMEOUT_ENV_VAR):
            SchedulerOptions.from_env()

    @pytest.mark.parametrize("raw", ["0", "-2", "three", "1.5"])
    def test_bad_retries_raises_naming_variable(self, monkeypatch, raw):
        self._clear(monkeypatch)
        monkeypatch.setenv(RETRIES_ENV_VAR, raw)
        with pytest.raises(ValueError, match=RETRIES_ENV_VAR):
            SchedulerOptions.from_env()

    @pytest.mark.parametrize("raw", ["0", "-0.5", "beat"])
    def test_bad_heartbeat_raises_naming_variable(self, monkeypatch, raw):
        self._clear(monkeypatch)
        monkeypatch.setenv(HEARTBEAT_ENV_VAR, raw)
        with pytest.raises(ValueError, match=HEARTBEAT_ENV_VAR):
            SchedulerOptions.from_env()


class TestSimBackend:
    def test_unset_means_scalar(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert backend_from_env() == "scalar"

    @pytest.mark.parametrize("raw", ["", "   "])
    def test_blank_means_scalar(self, monkeypatch, raw):
        monkeypatch.setenv(BACKEND_ENV_VAR, raw)
        assert backend_from_env() == "scalar"

    @pytest.mark.parametrize("raw", ["scalar", "array", " Array ", "SCALAR"])
    def test_valid_values_normalise(self, monkeypatch, raw):
        monkeypatch.setenv(BACKEND_ENV_VAR, raw)
        assert backend_from_env() == raw.strip().lower()

    @pytest.mark.parametrize("raw", ["numpy", "arry", "fast", "0", "both"])
    def test_bad_values_raise_naming_variable(self, monkeypatch, raw):
        monkeypatch.setenv(BACKEND_ENV_VAR, raw)
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            backend_from_env()

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "array")
        assert resolve_backend("scalar") == "scalar"
        assert resolve_backend(None) == "array"

    def test_explicit_garbage_raises(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend("gpu")

    def test_env_garbage_fails_at_run_time(self, paper72_dragonfly, monkeypatch):
        # The error must surface where a sweep would build its engine,
        # not only in the parsing helper.
        from repro.network.backend import make_simulator
        from repro.network.config import SimulationConfig
        from repro.network.traffic import make_pattern
        from repro.routing import make_routing

        monkeypatch.setenv(BACKEND_ENV_VAR, "vector")
        with pytest.raises(ValueError, match=BACKEND_ENV_VAR):
            make_simulator(
                paper72_dragonfly,
                make_routing("MIN"),
                make_pattern("uniform_random", paper72_dragonfly),
                SimulationConfig(),
            )
