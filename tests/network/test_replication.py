"""Tests for seed replication and confidence intervals."""

import math

import pytest

from repro.network.config import SimulationConfig
from repro.network.replication import ReplicatedMetric, replicate
from repro.routing.ugal import make_routing


@pytest.fixture()
def config():
    return SimulationConfig(
        load=0.2, warmup_cycles=300, measure_cycles=300, drain_max_cycles=4000
    )


class TestReplicatedMetric:
    def test_mean_and_std(self):
        metric = ReplicatedMetric("x", [1.0, 2.0, 3.0])
        assert metric.mean == 2.0
        assert metric.std == pytest.approx(1.0)

    def test_ci_shrinks_with_runs(self):
        narrow = ReplicatedMetric("x", [1.0, 2.0] * 8)
        wide = ReplicatedMetric("x", [1.0, 2.0])
        assert narrow.ci95_half_width < wide.ci95_half_width

    def test_single_value_zero_spread(self):
        metric = ReplicatedMetric("x", [5.0])
        assert metric.std == 0.0
        assert metric.ci95_half_width == 0.0

    def test_str(self):
        assert "n=2" in str(ReplicatedMetric("lat", [1.0, 2.0]))


class TestReplicate:
    def test_basic_replication(self, paper72_dragonfly, config):
        result = replicate(
            paper72_dragonfly,
            lambda: make_routing("MIN"),
            "uniform_random",
            config,
            seeds=(1, 2, 3),
        )
        assert result.latency.runs == 3
        assert result.saturated_runs == 0
        assert result.accepted_load.mean == pytest.approx(0.2, abs=0.03)

    def test_seeds_produce_variance(self, paper72_dragonfly, config):
        result = replicate(
            paper72_dragonfly,
            lambda: make_routing("MIN"),
            "uniform_random",
            config,
            seeds=(1, 2, 3, 4),
        )
        assert result.latency.std > 0

    def test_ci_is_tight_at_low_load(self, paper72_dragonfly, config):
        result = replicate(
            paper72_dragonfly,
            lambda: make_routing("MIN"),
            "uniform_random",
            config,
            seeds=(1, 2, 3, 4, 5),
        )
        assert result.latency.ci95_half_width < 0.25 * result.latency.mean

    def test_saturated_runs_counted(self, paper72_dragonfly):
        config = SimulationConfig(
            load=0.4, warmup_cycles=300, measure_cycles=300,
            drain_max_cycles=300,
        )
        result = replicate(
            paper72_dragonfly,
            lambda: make_routing("MIN"),
            "worst_case",
            config,
            seeds=(1, 2),
        )
        assert result.saturated_runs == 2
        assert math.isinf(result.latency.mean)

    def test_requires_seeds(self, paper72_dragonfly, config):
        with pytest.raises(ValueError):
            replicate(
                paper72_dragonfly,
                lambda: make_routing("MIN"),
                "uniform_random",
                config,
                seeds=(),
            )

    def test_summary_renders(self, paper72_dragonfly, config):
        result = replicate(
            paper72_dragonfly,
            lambda: make_routing("MIN"),
            "uniform_random",
            config,
            seeds=(1, 2),
        )
        assert "latency" in result.summary() or "MIN" in result.summary()
