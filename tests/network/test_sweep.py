"""Tests for load sweeps and saturation search."""

import math

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.sweep import load_sweep, run_point, saturation_load
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(
        load=0.1, warmup_cycles=300, measure_cycles=300, drain_max_cycles=3000
    )


class TestLoadSweep:
    def test_latency_rises_with_load(self, df, config):
        points = load_sweep(df, "MIN", "uniform_random", (0.1, 0.5, 0.9), config)
        latencies = [p.latency for p in points]
        assert latencies[0] < latencies[-1]

    def test_point_metadata(self, df, config):
        (point,) = load_sweep(df, "VAL", "uniform_random", (0.2,), config)
        assert point.load == 0.2
        assert point.result.routing_name == "VAL"
        assert point.result.pattern_name == "uniform_random"

    def test_saturated_point_reports_inf(self, df, config):
        (point,) = load_sweep(df, "MIN", "worst_case", (0.9,), config)
        assert point.latency == math.inf or point.latency > 100


class TestSaturationLoad:
    def test_min_worst_case_near_1_over_ah(self, df, config):
        load = saturation_load(
            df, "MIN", "worst_case", config,
            low=0.02, high=0.5, tolerance=0.03, latency_limit=60.0,
        )
        assert load == pytest.approx(1.0 / 8.0, abs=0.05)

    def test_returns_zero_when_low_already_saturated(self, df, config):
        load = saturation_load(
            df, "MIN", "worst_case", config,
            low=0.3, high=0.5, latency_limit=30.0,
        )
        assert load == 0.0

    def test_returns_high_when_stable_everywhere(self, df, config):
        load = saturation_load(
            df, "MIN", "uniform_random", config,
            low=0.05, high=0.2, latency_limit=100.0,
        )
        assert load == 0.2


class TestRunPoint:
    def test_independent_instances(self, df, config):
        first = run_point(df, make_routing("MIN"), "uniform_random", config)
        second = run_point(df, make_routing("MIN"), "uniform_random", config)
        assert first.latencies == second.latencies
