"""Golden regression: serial, parallel and cached sweeps reproduce the
checked-in fixtures bit for bit.

The fixtures under ``tests/golden/`` were produced by a serial
``load_sweep`` (``tests/golden/make_golden.py``); any divergence means
either the simulator's behaviour changed (then regenerate the fixtures
*and* bump ``repro.network.cache.SCHEMA_VERSION`` in the same commit)
or the parallel/cache machinery broke determinism (a bug -- fix it).
"""

import json
import pathlib

import pytest

from repro.core.params import DragonflyParams
from repro.network.cache import SweepCache
from repro.network.config import SimulationConfig
from repro.network.parallel import SweepExecutor
from repro.network.sweep import load_sweep
from repro.topology.dragonfly import Dragonfly

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


def load_fixture(path):
    fixture = json.loads(path.read_text())
    topology = Dragonfly(DragonflyParams(**fixture["topology"]))
    config = SimulationConfig(**fixture["config"])
    return fixture, topology, config


def sweep_dicts(points):
    return [point.result.to_dict() for point in points]


@pytest.fixture(params=FIXTURES, ids=[path.stem for path in FIXTURES])
def golden(request):
    return load_fixture(request.param)


def test_fixtures_exist():
    assert len(FIXTURES) >= 2, "golden fixtures missing from tests/golden/"


def test_serial_matches_golden(golden):
    fixture, topology, config = golden
    points = load_sweep(
        topology, fixture["routing"], fixture["pattern"], fixture["loads"],
        config,
    )
    assert sweep_dicts(points) == fixture["points"]


def test_parallel_matches_golden(golden):
    fixture, topology, config = golden
    points = load_sweep(
        topology, fixture["routing"], fixture["pattern"], fixture["loads"],
        config, executor=SweepExecutor(workers=2),
    )
    assert sweep_dicts(points) == fixture["points"]


def test_cached_rerun_matches_golden(golden, tmp_path):
    fixture, topology, config = golden
    executor = SweepExecutor(cache=SweepCache(tmp_path / "cache"))
    for _ in range(2):  # second pass is answered entirely from disk
        points = load_sweep(
            topology, fixture["routing"], fixture["pattern"], fixture["loads"],
            config, executor=executor,
        )
        assert sweep_dicts(points) == fixture["points"]
    assert executor.stats["cached"] == len(fixture["loads"])
