"""Unit tests for the batched route-decision kernel.

The backend-differential corpus certifies the kernel end to end; these
tests pin its components in isolation so a regression is reported at
the layer that broke, not as a whole-run divergence:

* the Mersenne-Twister transplant reproduces CPython's stream word for
  word, including rejection sampling and position hand-back;
* the lowered hop tables agree with :func:`repro.routing.paths.next_hop`;
* :meth:`DecideTables.batch_decide` resolves to exactly the decision the
  scalar :meth:`RoutingAlgorithm.decide` makes, for every registry
  routing, against a shared synthetic congestion state;
* eligibility is conservative, fallbacks are logged, and provenance
  reports the tier that ran.
"""

from __future__ import annotations

import dataclasses
import logging
import random

import numpy as np
import pytest

from repro.core.params import DragonflyParams
from repro.network.backend import contract_for, make_simulator
from repro.network.config import SimulationConfig
from repro.network.decide_kernel import (
    KERNEL_NAME,
    DecideTables,
    VectorizedMT19937,
    kernel_ineligibility,
    lower_traffic,
)
from repro.network.traffic import make_pattern
from repro.routing import ALL_ROUTING_NAMES, make_routing
from repro.routing.minimal import MinimalRouting
from repro.routing.paths import memoised_valiant_plan, next_hop
from repro.topology.dragonfly import Dragonfly

TOPOLOGY = Dragonfly(DragonflyParams.paper_example_72())

BASE_CONFIG = SimulationConfig(
    load=0.2,
    seed=11,
    warmup_cycles=30,
    measure_cycles=30,
    drain_max_cycles=1500,
)


# ----------------------------------------------------------------------
# Mersenne Twister transplant
# ----------------------------------------------------------------------
class TestVectorizedMT19937:
    def test_word_stream_matches_cpython(self):
        # Two full twist generations (624 words each) so the 3-slab
        # vectorized recurrence is exercised across its boundaries.
        rng = random.Random(123)
        mt = VectorizedMT19937.from_python_rng(rng)
        for _ in range(1500):
            assert mt.getrandbits(32) == rng.getrandbits(32)

    def test_transplant_does_not_advance_source(self):
        rng = random.Random(5)
        before = rng.getstate()
        VectorizedMT19937.from_python_rng(rng)
        assert rng.getstate() == before

    def test_getrandbits_truncation(self):
        rng = random.Random(99)
        mt = VectorizedMT19937.from_python_rng(rng)
        for k in (1, 5, 8, 13, 32, 6, 6, 6):
            assert mt.getrandbits(k) == rng.getrandbits(k)

    @pytest.mark.parametrize("n", [1, 2, 3, 32, 33, 71, 623, 624, 1000])
    def test_rejection_sample_matches_scalar(self, n):
        rng = random.Random(777)
        mt = VectorizedMT19937.from_python_rng(rng)
        draws = mt.rejection_sample(2000, n)
        # The scalar reference: the inlined rejection loop of
        # _valiant_plan_between / Random._randbelow_with_getrandbits.
        k = n.bit_length()
        for j in range(2000):
            r = rng.getrandbits(k)
            while r >= n:
                r = rng.getrandbits(k)
            assert int(draws[j]) == r, f"draw {j} diverged"

    def test_rejection_sample_commits_exact_position(self):
        # After a batch, the stream must stand on the word *after* the
        # last accepted one: interleaved scalar consumption stays
        # identical to a generator that did everything scalar-side.
        rng = random.Random(31)
        mt = VectorizedMT19937.from_python_rng(rng)
        n = 33  # forces rejections (k = 6, reject 33..63)
        for j in range(50):
            r = rng.getrandbits(n.bit_length())
            while r >= n:
                r = rng.getrandbits(n.bit_length())
            assert int(mt.rejection_sample(1, n)[0]) == r
            # A few raw words in between, both sides.
            for _ in range(j % 3):
                assert mt.getrandbits(32) == rng.getrandbits(32)

    def test_to_python_state_roundtrip(self):
        rng = random.Random(8)
        mt = VectorizedMT19937.from_python_rng(rng)
        mt.rejection_sample(700, 5)  # crosses a twist boundary
        back = random.Random()
        back.setstate(mt.to_python_state())
        # Advance the scalar reference by the same number of raw words
        # the batch consumed, then both must continue identically.
        clone = random.Random(8)
        consumed = 0
        accepted = 0
        while accepted < 700:
            if clone.getrandbits(3) < 5:
                accepted += 1
            consumed += 1
        for _ in range(100):
            assert back.getrandbits(32) == clone.getrandbits(32)

    def test_rejection_sample_rejects_bad_n(self):
        mt = VectorizedMT19937.from_python_rng(random.Random(1))
        with pytest.raises(ValueError):
            mt.rejection_sample(1, 0)

    def test_rejects_non_mt_state(self):
        class NotMT(random.Random):
            def getstate(self):
                return (2, (0,) * 625, None)

        with pytest.raises(ValueError):
            VectorizedMT19937.from_python_rng(NotMT())


# ----------------------------------------------------------------------
# Hop tables vs the scalar next-hop executor
# ----------------------------------------------------------------------
class TestHopTables:
    def test_tables_match_next_hop(self):
        topo = TOPOLOGY
        tables = DecideTables(topo, make_routing("UGAL-L"), BASE_CONFIG.num_vcs)
        a, g, p = topo.a, topo.g, topo.p
        rng = random.Random(0)  # never consumed on single-link pairs
        for sg in range(g):
            for dg in range(g):
                if sg == dg:
                    continue
                dst_terminal = (dg * a) * p  # first terminal of dg
                pair = sg * g + dg
                for li in range(a):
                    src_router = sg * a + li
                    # Minimal first hop (m = 1).
                    plan = tables.plan_for(pair, True)
                    want = next_hop(topo, src_router, plan, 0, dst_terminal)
                    key = (pair * 2 + 1) * a + li
                    got = (int(tables.hop0_port[key]), int(tables.hop0_vc[key]))
                    assert got == want, (sg, dg, li, "minimal hop0")
        # Valiant phases for a sample of triples.
        for sg, ig, dg in [(0, 3, 7), (2, 8, 1), (5, 0, 4), (7, 6, 2)]:
            plan = memoised_valiant_plan(topo, sg, ig, dg)
            dst_terminal = (dg * a + 1) * p + 1
            for li in range(a):
                # Phase 0: toward the (sg -> ig) link, no global hops yet.
                src_router = sg * a + li
                want = next_hop(topo, src_router, plan, 0, dst_terminal)
                key = ((sg * g + ig) * 2) * a + li
                got = (int(tables.hop0_port[key]), int(tables.hop0_vc[key]))
                assert got == want, (sg, ig, dg, li, "valiant hop0")
                # Phase 1: inside ig after one global hop.
                mid_router = ig * a + li
                want = next_hop(topo, mid_router, plan, 1, dst_terminal)
                key = (ig * g + dg) * a + li
                got = (int(tables.hop1_port[key]), int(tables.hop1_vc[key]))
                assert got == want, (sg, ig, dg, li, "valiant hop1")


# ----------------------------------------------------------------------
# Batched decide vs scalar decide, every registry routing
# ----------------------------------------------------------------------
class _FakeView:
    """Deterministic congestion state readable from both sides.

    Scalar decides read it through the CongestionView protocol; the
    batched path reads the same numbers through the flattened
    ``qa``/``qb`` indices `batch_decide` emits -- so the test also pins
    the index convention (``router * radix + port``, per-VC appended).
    """

    def __init__(self, topology: Dragonfly, num_vcs: int) -> None:
        self.radix = topology.fabric.max_radix()
        self.num_vcs = num_vcs
        n_out = topology.fabric.num_routers * self.radix
        self.pending = [(i * 13 + 5) % 23 for i in range(n_out)]
        self.pending_vc = [(i * 7 + 3) % 11 for i in range(n_out * num_vcs)]

    def output_occupancy(self, router: int, out_port: int) -> int:
        return self.pending[router * self.radix + out_port]

    def output_vc_occupancy(self, router: int, out_port: int, vc: int) -> int:
        return self.pending_vc[(router * self.radix + out_port) * self.num_vcs + vc]


def _decider_sample(topology: Dragonfly, seed: int, count: int):
    """(src_router, dst_terminal) pairs covering every decide regime."""
    rng = random.Random(seed)
    n = topology.num_terminals
    p = topology.p
    pairs = []
    for _ in range(count):
        src_t = rng.randrange(n)
        roll = rng.random()
        if roll < 0.15:  # same router
            dst = src_t // p * p + (src_t + 1) % p
        elif roll < 0.3:  # same group, different router
            per_group = topology.params.terminals_per_group
            base = src_t // per_group * per_group
            dst = base + (src_t - base + p) % per_group
        else:  # inter-group
            dst = rng.randrange(n)
        if dst == src_t:
            dst = (dst + 1) % n
        pairs.append((topology.terminal_router(src_t), dst))
    return pairs


@pytest.mark.parametrize("name", ALL_ROUTING_NAMES)
def test_batch_decide_matches_scalar(name):
    topo = TOPOLOGY
    routing = make_routing(name)
    num_vcs = BASE_CONFIG.num_vcs
    tables = DecideTables(topo, routing, num_vcs)
    view = _FakeView(topo, num_vcs)
    pairs = _decider_sample(topo, seed=42, count=300)

    srcs = np.array([s for s, _ in pairs], dtype=np.int64)
    dsts = np.array([d for _, d in pairs], dtype=np.int64)
    dstr = np.array([topo.terminal_router(d) for _, d in pairs], dtype=np.int64)

    stream = VectorizedMT19937.from_python_rng(random.Random(9))
    batch = tables.batch_decide(stream, srcs, dsts, dstr)

    rng = random.Random(9)
    for i, (src_router, dst_terminal) in enumerate(pairs):
        plan = routing.decide(view, topo, rng, src_router, dst_terminal)
        want = next_hop(topo, src_router, plan, 0, dst_terminal)

        if batch.mode[i] == 0:
            got_port, got_vc = batch.a_port[i], batch.a_vc[i]
            got_min, got_key = batch.a_min[i], batch.a_key[i]
        else:
            # The caller's live comparison, against the same state.
            if batch.use_vc[i]:
                q_a = view.pending_vc[batch.qa[i]]
                q_b = view.pending_vc[batch.qb[i]]
            else:
                q_a = view.pending[batch.qa[i]]
                q_b = view.pending[batch.qb[i]]
            if q_a * batch.hm[i] <= q_b * batch.hn[i]:
                got_port, got_vc = batch.a_port[i], batch.a_vc[i]
                got_min, got_key = batch.a_min[i], batch.a_key[i]
            else:
                got_port, got_vc = batch.b_port[i], batch.b_vc[i]
                got_min, got_key = False, batch.b_key[i]

        assert (got_port, got_vc) == want, f"decider {i} first hop"
        assert got_min == plan.minimal, f"decider {i} minimal flag"
        lowered = tables.plan_for(got_key, got_min)
        assert lowered.minimal == plan.minimal
        assert lowered.gc1 == plan.gc1, f"decider {i} gc1"
        assert lowered.gc2 == plan.gc2, f"decider {i} gc2"

    # Both sides must have consumed the route stream identically.
    back = random.Random()
    back.setstate(stream.to_python_state())
    assert back.getrandbits(32) == rng.getrandbits(32)


# ----------------------------------------------------------------------
# Eligibility, fallback logging, provenance
# ----------------------------------------------------------------------
class TestEligibility:
    def test_canonical_single_flit_is_eligible(self):
        for name in ALL_ROUTING_NAMES:
            assert kernel_ineligibility(
                BASE_CONFIG, TOPOLOGY, make_routing(name)
            ) is None

    def test_multiflit_is_ineligible(self):
        config = dataclasses.replace(BASE_CONFIG, packet_size=4)
        reason = kernel_ineligibility(config, TOPOLOGY, make_routing("MIN"))
        assert reason is not None and "packet_size" in reason

    def test_routing_subclass_is_ineligible(self):
        class Custom(MinimalRouting):
            pass

        reason = kernel_ineligibility(BASE_CONFIG, TOPOLOGY, Custom())
        assert reason is not None and "Custom" in reason

    def test_topology_subclass_is_ineligible(self):
        class Variant(Dragonfly):
            pass

        topo = Variant(DragonflyParams.paper_example_72())
        reason = kernel_ineligibility(BASE_CONFIG, topo, make_routing("MIN"))
        assert reason is not None

    def test_contract_stamps_kernel_capability(self):
        contract = contract_for(BASE_CONFIG, TOPOLOGY, make_routing("UGAL-L"))
        assert contract.bit_identical
        assert contract.decide_kernel == KERNEL_NAME
        assert contract.kernel_fallback is None

    def test_contract_stamps_fallback_reason(self):
        config = dataclasses.replace(BASE_CONFIG, packet_size=4)
        contract = contract_for(config, TOPOLOGY, make_routing("UGAL-L"))
        assert not contract.bit_identical
        assert contract.decide_kernel is None
        assert contract.kernel_fallback is not None

    def test_contract_without_context_stays_unstamped(self):
        contract = contract_for(BASE_CONFIG)
        assert contract.decide_kernel is None
        assert contract.kernel_fallback is None


class TestTrafficLowering:
    """`lower_traffic` replays the pattern rng word-for-word."""

    @pytest.mark.parametrize(
        "name", ["uniform_random", "worst_case", "group_tornado"]
    )
    def test_batch_matches_scalar_calls(self, name: str) -> None:
        reference = make_pattern(name, TOPOLOGY, seed=101)
        lowered = lower_traffic(make_pattern(name, TOPOLOGY, seed=101))
        assert lowered is not None
        srcs = [(i * 29 + 7) % TOPOLOGY.num_terminals for i in range(400)]
        expected = [reference(src) for src in srcs]
        got = lowered.batch(np.asarray(srcs, np.int64))
        assert got.tolist() == expected

    def test_split_batches_keep_stream_position(self) -> None:
        reference = make_pattern("worst_case", TOPOLOGY, seed=5)
        lowered = lower_traffic(make_pattern("worst_case", TOPOLOGY, seed=5))
        srcs = list(range(TOPOLOGY.num_terminals)) * 3
        expected = [reference(src) for src in srcs]
        got: list[int] = []
        cursor = 0
        for size in (1, 13, 50, 7, 121, 24):
            chunk = np.asarray(srcs[cursor:cursor + size], np.int64)
            got.extend(lowered.batch(chunk).tolist())
            cursor += size
        assert got == expected[:cursor]

    def test_lowering_does_not_advance_source_rng(self) -> None:
        pattern = make_pattern("uniform_random", TOPOLOGY, seed=3)
        before = pattern._rng.getstate()
        lowered = lower_traffic(pattern)
        assert lowered is not None
        lowered.batch(np.arange(32, dtype=np.int64))
        assert pattern._rng.getstate() == before

    def test_unlowerable_patterns_return_none(self) -> None:
        for name in ("bursty", "shift", "hotspot"):
            assert lower_traffic(make_pattern(name, TOPOLOGY, seed=2)) is None

    def test_kernel_sim_uses_lowering(self) -> None:
        sim = _sim(BASE_CONFIG, "array")
        assert sim._kernel and sim._traffic_lowering is not None
        bursty = make_simulator(
            TOPOLOGY,
            make_routing("UGAL-L"),
            make_pattern("bursty", TOPOLOGY, seed=9),
            BASE_CONFIG,
            backend="array",
        )
        assert bursty._kernel and bursty._traffic_lowering is None


def _sim(config: SimulationConfig, backend: str, routing_name: str = "UGAL-L"):
    return make_simulator(
        TOPOLOGY,
        make_routing(routing_name),
        make_pattern("uniform_random", TOPOLOGY, seed=config.seed + 17),
        config,
        backend=backend,
    )


class TestProvenance:
    def test_array_kernel_provenance(self):
        result = _sim(BASE_CONFIG, "array").run()
        assert result.backend_info == {"backend": "array", "kernel": KERNEL_NAME}

    def test_scalar_provenance(self):
        result = _sim(BASE_CONFIG, "scalar").run()
        assert result.backend_info == {"backend": "scalar", "kernel": "none"}

    def test_fallback_is_reported_and_logged(self, caplog):
        config = dataclasses.replace(BASE_CONFIG, packet_size=4)
        with caplog.at_level(logging.INFO, logger="repro.network.array_backend"):
            sim = _sim(config, "array")
        info = sim.backend_provenance()
        assert info["backend"] == "array"
        assert info["kernel"] == "none"
        assert "packet_size" in info["kernel_fallback"]
        assert any(
            "decide kernel disabled" in record.getMessage()
            for record in caplog.records
        ), "fallback must be logged, never silent"

    def test_provenance_excluded_from_equality_and_payload(self):
        scalar = _sim(BASE_CONFIG, "scalar").run()
        array = _sim(BASE_CONFIG, "array").run()
        assert scalar == array  # provenance is compare=False metadata
        assert "backend_info" not in scalar.to_dict()


class TestEndToEnd:
    @pytest.mark.parametrize("pattern", ["worst_case", "bursty"])
    def test_kernel_run_is_bit_identical(self, pattern):
        config = dataclasses.replace(BASE_CONFIG, load=0.4)
        traffic = lambda: make_pattern(pattern, TOPOLOGY, seed=config.seed + 17)
        runs = {}
        for backend in ("scalar", "array"):
            sim = make_simulator(
                TOPOLOGY, make_routing("UGAL-L_VCH"), traffic(), config,
                backend=backend,
            )
            runs[backend] = sim.run()
        assert runs["array"].to_dict() == runs["scalar"].to_dict()
        assert runs["array"].backend_info["kernel"] == KERNEL_NAME
