"""The result cache: hits skip simulation, and only exact keys hit.

The headline property (an ISSUE satellite): a second ``load_sweep`` with
an identical configuration performs *zero* ``run_point`` invocations --
counted by monkeypatching the function the executor's worker body looks
up at call time -- and returns equal results; any mutation of the key
(seed, load, routing, topology parameters) misses.
"""

import dataclasses
import json

import pytest

import repro.network.sweep as sweep_module
from repro.core.params import DragonflyParams
from repro.network.cache import (
    SCHEMA_VERSION,
    SweepCache,
    key_digest,
    point_key,
)
from repro.network.config import SimulationConfig
from repro.network.parallel import SweepExecutor
from repro.network.sweep import load_sweep, saturation_load
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(
        load=0.1, seed=9, warmup_cycles=100, measure_cycles=100,
        drain_max_cycles=2000,
    )


@pytest.fixture()
def counted_run_point(monkeypatch):
    """Count (and forward) every real simulation the sweep performs."""
    calls = []
    real = sweep_module.run_point

    def counting(topology, routing, pattern_name, config):
        calls.append(config)
        return real(topology, routing, pattern_name, config)

    monkeypatch.setattr(sweep_module, "run_point", counting)
    return calls


def point_dicts(points):
    return [(p.load, p.result.to_dict()) for p in points]


class TestCacheHits:
    LOADS = (0.1, 0.2)

    def test_second_sweep_simulates_nothing(
        self, df, config, tmp_path, counted_run_point
    ):
        executor = SweepExecutor(cache=SweepCache(tmp_path / "cache"))
        first = load_sweep(
            df, "MIN", "uniform_random", self.LOADS, config, executor=executor
        )
        assert len(counted_run_point) == len(self.LOADS)

        counted_run_point.clear()
        second = load_sweep(
            df, "MIN", "uniform_random", self.LOADS, config, executor=executor
        )
        assert counted_run_point == []
        assert point_dicts(first) == point_dicts(second)

    def test_cache_shared_across_executors(
        self, df, config, tmp_path, counted_run_point
    ):
        """The cache lives on disk, not in the executor instance."""
        load_sweep(
            df, "MIN", "uniform_random", self.LOADS, config,
            executor=SweepExecutor(cache=SweepCache(tmp_path / "cache")),
        )
        counted_run_point.clear()
        load_sweep(
            df, "MIN", "uniform_random", self.LOADS, config,
            executor=SweepExecutor(cache=SweepCache(tmp_path / "cache")),
        )
        assert counted_run_point == []

    def test_mutations_miss(self, df, config, tmp_path, counted_run_point):
        executor = SweepExecutor(cache=SweepCache(tmp_path / "cache"))
        load_sweep(
            df, "MIN", "uniform_random", self.LOADS, config, executor=executor
        )

        counted_run_point.clear()
        load_sweep(
            df, "MIN", "uniform_random", self.LOADS,
            dataclasses.replace(config, seed=config.seed + 1),
            executor=executor,
        )
        assert len(counted_run_point) == len(self.LOADS), "seed change must miss"

        counted_run_point.clear()
        load_sweep(
            df, "VAL", "uniform_random", self.LOADS, config, executor=executor
        )
        assert len(counted_run_point) == len(self.LOADS), "routing change must miss"

        counted_run_point.clear()
        other = Dragonfly(DragonflyParams(p=1, a=2, h=1))
        load_sweep(
            other, "MIN", "uniform_random", self.LOADS, config, executor=executor
        )
        assert len(counted_run_point) == len(self.LOADS), "topology change must miss"


class TestCacheInvalidation:
    def test_schema_bump_invalidates_and_removes(self, df, config, tmp_path):
        cache = SweepCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        executor.run_point(df, "MIN", "uniform_random", config)
        key = point_key(df, "MIN", "uniform_random", config)
        path = tmp_path / f"{key_digest(key)}.json"
        assert path.is_file()

        entry = json.loads(path.read_text())
        entry["schema"] = SCHEMA_VERSION + 1
        entry["key"]["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert not path.exists(), "stale entry must self-heal"

    def test_key_mismatch_is_a_miss(self, df, config, tmp_path):
        cache = SweepCache(tmp_path)
        SweepExecutor(cache=cache).run_point(df, "MIN", "uniform_random", config)
        key = point_key(df, "MIN", "uniform_random", config)
        path = tmp_path / f"{key_digest(key)}.json"
        entry = json.loads(path.read_text())
        entry["key"]["routing"] = "VAL"  # hand-edited / colliding entry
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_corrupt_file_is_a_miss(self, df, config, tmp_path):
        cache = SweepCache(tmp_path)
        key = point_key(df, "MIN", "uniform_random", config)
        (tmp_path / f"{key_digest(key)}.json").write_text("{not json")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_clear_and_len(self, df, config, tmp_path):
        cache = SweepCache(tmp_path)
        executor = SweepExecutor(cache=cache)
        executor.run_point(df, "MIN", "uniform_random", config)
        executor.run_point(df, "VAL", "uniform_random", config)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestKeyStability:
    def test_digest_is_order_insensitive_and_stable(self, df, config):
        key = point_key(df, "MIN", "uniform_random", config)
        reordered = dict(reversed(list(key.items())))
        assert key_digest(key) == key_digest(reordered)
        assert key_digest(key) == key_digest(
            point_key(df, "MIN", "uniform_random", dataclasses.replace(config))
        )

    def test_key_captures_every_config_field(self, df, config):
        key = point_key(df, "MIN", "uniform_random", config)
        assert set(key["config"]) == {
            field.name for field in dataclasses.fields(SimulationConfig)
        }
        assert key["topology"]["params"] == {
            "p": 2, "a": 4, "h": 2, "num_groups": 9,
        }


class TestSaturationProbeReuse:
    def test_each_load_simulated_at_most_once(
        self, df, config, counted_run_point
    ):
        saturation_load(
            df, "MIN", "worst_case", config,
            low=0.05, high=0.4, tolerance=0.04, latency_limit=60.0,
        )
        probed = [c.load for c in counted_run_point]
        assert len(probed) == len(set(probed)), f"re-simulated loads: {probed}"

    def test_repeated_bisection_hits_cache(
        self, df, config, tmp_path, counted_run_point
    ):
        executor = SweepExecutor(cache=SweepCache(tmp_path / "cache"))
        kwargs = dict(
            low=0.05, high=0.4, tolerance=0.04, latency_limit=60.0,
            executor=executor,
        )
        first = saturation_load(df, "MIN", "worst_case", config, **kwargs)
        assert counted_run_point, "first bisection must simulate"

        counted_run_point.clear()
        second = saturation_load(df, "MIN", "worst_case", config, **kwargs)
        assert counted_run_point == [], "second bisection must be all cache hits"
        assert first == second
