"""Tests for request-reply protocol traffic with separate VC classes."""

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


def run(df, routing="UGAL-L_VCH", load=0.15, **kwargs):
    defaults = dict(
        load=load,
        warmup_cycles=500,
        measure_cycles=500,
        drain_max_cycles=12_000,
        num_vcs=6,
        request_reply=True,
    )
    defaults.update(kwargs)
    config = SimulationConfig(**defaults)
    pattern = make_pattern("uniform_random", df, seed=5)
    simulator = Simulator(df, make_routing(routing), pattern, config)
    return simulator, simulator.run()


class TestValidation:
    def test_needs_six_vcs(self):
        with pytest.raises(ValueError):
            SimulationConfig(request_reply=True, num_vcs=3)

    def test_six_vcs_accepted(self):
        config = SimulationConfig(request_reply=True, num_vcs=6)
        assert config.request_reply


class TestRoundTrip:
    def test_all_round_trips_complete(self, df):
        simulator, result = run(df)
        assert result.drained
        simulator.check_invariants()

    def test_latency_is_round_trip(self, df):
        _, round_trip = run(df)
        config = SimulationConfig(
            load=0.15, warmup_cycles=500, measure_cycles=500,
            drain_max_cycles=12_000,
        )
        pattern = make_pattern("uniform_random", df, seed=5)
        one_way = Simulator(df, make_routing("UGAL-L_VCH"), pattern, config).run()
        assert round_trip.avg_latency > 1.7 * one_way.avg_latency

    def test_reply_volume_doubles_ejections(self, df):
        _, with_replies = run(df, load=0.1)
        config = SimulationConfig(
            load=0.1, warmup_cycles=500, measure_cycles=500,
            drain_max_cycles=12_000,
        )
        pattern = make_pattern("uniform_random", df, seed=5)
        plain = Simulator(df, make_routing("UGAL-L_VCH"), pattern, config).run()
        ratio = with_replies.accepted_load / plain.accepted_load
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_reply_class_uses_upper_vcs(self, df):
        """After a run, the upper VC band (3..5) saw traffic: its credit
        counters moved at some point (pending counters prove usage)."""
        simulator, _ = run(df)
        # All credits restored at drain, so check the CTQ-free evidence:
        # re-run a short window and inspect live state mid-flight.
        config = SimulationConfig(
            load=0.3, warmup_cycles=0, measure_cycles=50,
            drain_max_cycles=0, num_vcs=6, request_reply=True,
        )
        pattern = make_pattern("uniform_random", df, seed=6)
        live = Simulator(df, make_routing("UGAL-L_VCH"), pattern, config)
        live.run()
        upper_band_used = any(
            live.output_vc_occupancy(router, port, vc)
            for router in range(df.fabric.num_routers)
            for port in range(df.params.radix)
            for vc in (3, 4, 5)
        )
        lower_band_used = any(
            live.output_vc_occupancy(router, port, vc)
            for router in range(df.fabric.num_routers)
            for port in range(df.params.radix)
            for vc in (0, 1, 2)
        )
        assert upper_band_used and lower_band_used

    def test_works_with_adversarial_traffic(self, df):
        config = SimulationConfig(
            load=0.1, warmup_cycles=500, measure_cycles=500,
            drain_max_cycles=15_000, num_vcs=6, request_reply=True,
        )
        pattern = make_pattern("worst_case", df, seed=7)
        simulator = Simulator(df, make_routing("UGAL-L_VCH"), pattern, config)
        result = simulator.run()
        assert result.drained
        simulator.check_invariants()
