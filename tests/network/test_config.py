"""Tests for the simulation configuration validation."""

import pytest

from repro.network.config import SimulationConfig


class TestValidation:
    def test_defaults_valid(self):
        config = SimulationConfig()
        assert config.num_vcs == 3
        assert config.vc_buffer_depth == 16

    @pytest.mark.parametrize("load", [0.0, -0.5, 1.5])
    def test_rejects_bad_load(self, load):
        with pytest.raises(ValueError):
            SimulationConfig(load=load)

    def test_rejects_too_few_vcs(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_vcs=2)

    def test_rejects_zero_buffer(self):
        with pytest.raises(ValueError):
            SimulationConfig(vc_buffer_depth=0)

    def test_rejects_packet_larger_than_buffer(self):
        with pytest.raises(ValueError):
            SimulationConfig(packet_size=20, vc_buffer_depth=16)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            SimulationConfig(credit_delay_gain=-1.0)

    def test_rejects_empty_measurement(self):
        with pytest.raises(ValueError):
            SimulationConfig(measure_cycles=0)


class TestBuilders:
    def test_with_load(self):
        config = SimulationConfig(load=0.1).with_load(0.5)
        assert config.load == 0.5

    def test_with_buffers(self):
        config = SimulationConfig().with_buffers(256)
        assert config.vc_buffer_depth == 256
        # original untouched (frozen dataclass semantics)
        assert SimulationConfig().vc_buffer_depth == 16
