"""Property-based backend equivalence (hypothesis).

The differential corpus pins fixed configurations; this fuzzer samples
the configuration space itself -- random small dragonfly shapes
(p, a, h, g), routing algorithms, traffic patterns, loads, buffer
depths and seeds -- and asserts the backend-equivalence contract on
every draw.  Failures shrink to a minimal configuration and the
assertion names the first diverging statistic, so a shrunk report reads
"p=1 a=2 h=1 g=3 MIN uniform_random load=0.05: packet_latencies
diverge", not just "results differ".
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DragonflyParams
from repro.network.backend import contract_for, make_simulator
from repro.network.config import SimulationConfig
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@st.composite
def backend_setup(draw):
    p = draw(st.integers(min_value=1, max_value=2))
    h = draw(st.integers(min_value=1, max_value=2))
    a = draw(st.integers(min_value=2, max_value=4))
    max_g = a * h + 1
    g = draw(st.integers(min_value=2, max_value=max_g))
    if (g * a * h) % 2:
        g = g - 1 if g > 2 else g + 1
    g = max(2, min(g, max_g))
    routing = draw(
        st.sampled_from(
            ["MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VC", "UGAL-L_VCH",
             "UGAL-L_CR"]
        )
    )
    pattern = draw(st.sampled_from(["uniform_random", "worst_case"]))
    load = draw(st.sampled_from([0.05, 0.2, 0.5]))
    depth = draw(st.sampled_from([2, 4, 16]))
    packet_size = draw(st.sampled_from([1, 1, 1, 4]))  # bias: bit-identity path
    if packet_size > depth:
        packet_size = 1
    seed = draw(st.integers(min_value=0, max_value=10_000))
    params = DragonflyParams(p=p, a=a, h=h, num_groups=g)
    config = SimulationConfig(
        load=load,
        warmup_cycles=60,
        measure_cycles=60,
        drain_max_cycles=3000,
        vc_buffer_depth=depth,
        packet_size=packet_size,
        seed=seed,
    )
    return params, routing, pattern, config


def run_backend(params, routing_name, pattern_name, config, backend):
    topology = Dragonfly(params)
    pattern = make_pattern(pattern_name, topology, seed=config.seed + 17)
    sim = make_simulator(
        topology, make_routing(routing_name), pattern, config, backend=backend
    )
    return sim.run()


@given(backend_setup())
@settings(max_examples=30, deadline=None)
def test_backends_agree_on_random_configurations(setup):
    """Scalar and array engines agree per the equivalence contract on
    any sampled shape/routing/pattern/load/seed combination."""
    params, routing_name, pattern_name, config = setup
    label = (
        f"p={params.p} a={params.a} h={params.h} g={params.num_groups} "
        f"{routing_name} {pattern_name} load={config.load} "
        f"packet_size={config.packet_size} seed={config.seed}"
    )
    scalar = run_backend(params, routing_name, pattern_name, config, "scalar")
    array = run_backend(params, routing_name, pattern_name, config, "array")
    contract = contract_for(config)

    # Statistic-by-statistic comparison so a shrunk failure names the
    # first diverging statistic instead of dumping two result dicts.
    assert array.saturated == scalar.saturated, f"{label}: saturated diverges"
    if contract.bit_identical:
        assert len(array.samples) == len(scalar.samples), (
            f"{label}: sample_count diverges"
        )
        assert array.latencies == scalar.latencies, (
            f"{label}: packet_latencies diverge"
        )
        assert array.ejected_flits_in_window == scalar.ejected_flits_in_window, (
            f"{label}: ejected_flits_in_window diverges"
        )
        assert array.global_channel_flits == scalar.global_channel_flits, (
            f"{label}: global_channel_flits diverge"
        )
        assert array.to_dict() == scalar.to_dict(), (
            f"{label}: full result diverges"
        )
    else:
        assert math.isclose(
            array.avg_latency,
            scalar.avg_latency,
            rel_tol=contract.mean_latency_rtol,
        ), f"{label}: avg_latency diverges beyond rtol"
        assert math.isclose(
            array.accepted_load,
            scalar.accepted_load,
            abs_tol=contract.accepted_load_atol,
        ), f"{label}: accepted_load diverges beyond atol"
