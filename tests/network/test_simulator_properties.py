"""Property-based tests of the simulator (hypothesis).

Random small configurations x loads x algorithms must preserve the
flow-control invariants, deliver packets to their actual destinations,
and conserve flits.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@st.composite
def simulation_setup(draw):
    p = draw(st.integers(min_value=1, max_value=2))
    h = draw(st.integers(min_value=1, max_value=2))
    a = draw(st.integers(min_value=2, max_value=4))
    max_g = a * h + 1
    g = draw(st.integers(min_value=2, max_value=max_g))
    if (g * a * h) % 2:
        g = g - 1 if g > 2 else g + 1
    g = max(2, min(g, max_g))
    routing = draw(
        st.sampled_from(["MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VCH",
                         "UGAL-L_CR"])
    )
    load = draw(st.sampled_from([0.05, 0.15, 0.3]))
    depth = draw(st.sampled_from([2, 4, 16]))
    packet_size = draw(st.sampled_from([1, 2]))
    if packet_size > depth:
        packet_size = 1
    seed = draw(st.integers(min_value=0, max_value=10_000))
    params = DragonflyParams(p=p, a=a, h=h, num_groups=g)
    config = SimulationConfig(
        load=load,
        warmup_cycles=100,
        measure_cycles=100,
        drain_max_cycles=5000,
        vc_buffer_depth=depth,
        packet_size=packet_size,
        seed=seed,
    )
    return params, routing, config


@given(simulation_setup())
@settings(max_examples=25, deadline=None)
def test_invariants_and_conservation(setup):
    """Random configurations preserve flow-control invariants.

    Misrouting cannot pass silently: the simulator itself asserts every
    ejected packet arrived at its destination terminal, so this property
    also proves correct delivery over the sampled space.
    """
    params, routing_name, config = setup
    topology = Dragonfly(params)
    pattern = make_pattern("uniform_random", topology, seed=config.seed + 1)
    simulator = Simulator(topology, make_routing(routing_name), pattern, config)
    result = simulator.run()
    simulator.check_invariants()
    # Tagged bookkeeping is exact.
    if result.drained:
        assert result.unfinished_tagged == 0
    # Latencies are causal.
    for sample in result.samples:
        assert sample.latency >= 1


@given(simulation_setup(), st.integers(min_value=3, max_value=17))
@settings(max_examples=15, deadline=None)
def test_invariants_hold_mid_run(setup, stride):
    """The active-set engine keeps the invariants at *every* cycle.

    ``check_invariants`` after ``run()`` only sees the drained end
    state; this drives the four phases manually (the exact order of
    ``run``) and re-checks the invariants every ``stride`` cycles while
    buffers are full and credits are in flight -- the states where a
    stale active-set bit or pending counter would actually hide.
    """
    params, routing_name, config = setup
    config = dataclasses.replace(
        config, warmup_cycles=40, measure_cycles=40, drain_max_cycles=0
    )
    topology = Dragonfly(params)
    pattern = make_pattern("uniform_random", topology, seed=config.seed + 1)
    simulator = Simulator(topology, make_routing(routing_name), pattern, config)
    for now in range(config.warmup_cycles + config.measure_cycles):
        simulator.now = now
        simulator._deliver_arrivals(now)
        simulator._deliver_credits(now)
        simulator._inject(now)
        simulator._switch()
        if now % stride == 0:
            simulator.check_invariants()
    simulator.check_invariants()


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=15, deadline=None)
def test_deliveries_complete_across_seeds(seed):
    """At moderate load every tagged packet of any seed is delivered
    (to the right terminal -- enforced by the simulator's ejection
    assertion) within the drain window."""
    topology = Dragonfly(DragonflyParams(p=1, a=2, h=1))
    config = SimulationConfig(
        load=0.3,
        warmup_cycles=100,
        measure_cycles=100,
        drain_max_cycles=4000,
        seed=seed,
    )
    pattern = make_pattern("uniform_random", topology, seed=seed + 9)
    simulator = Simulator(topology, make_routing("UGAL-L"), pattern, config)
    result = simulator.run()
    assert result.drained
    assert result.unfinished_tagged == 0
