"""Backend-differential harness: scalar vs array engine equivalence.

Every corpus case (``differential_corpus.CORPUS``, 199 configurations)
and every golden fixture runs on both backends; the array engine must
honour the equivalence contract declared for the configuration by
:func:`repro.network.backend.contract_for` -- bit-identity for
single-flit runs, declared tolerances for multi-flit.  When an
equivalence assertion fails, the harness re-runs both engines in
lockstep (:func:`repro.network.backend.first_divergence`) and reports
the first cycle and state field at which they split, which turns "the
latency is off" into "arbitration at port 37 diverged at cycle 112".

Scalar reference results are computed once per case and cached for the
whole module, so the scalar-backend parametrization doubles as a
determinism check (a second scalar run must reproduce the first).
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Dict

import pytest

from differential_corpus import CORPUS, TOPOLOGIES, DifferentialCase
from repro.core.params import DragonflyParams
from repro.network.backend import (
    BACKEND_ENV_VAR,
    BACKENDS,
    contract_for,
    first_divergence,
    make_simulator,
)
from repro.network.config import SimulationConfig
from repro.network.stats import SimulationResult
from repro.network.sweep import load_sweep
from repro.network.traffic import make_pattern
from repro.routing import (
    TableDrivenRouting,
    compile_dragonfly_tables,
    make_routing,
)
from repro.topology.dragonfly import Dragonfly

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"
GOLDEN_FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))
SCALE_FIXTURE = GOLDEN_DIR / "scale" / "ugal_paper1k.json"

_topologies: Dict[str, Dragonfly] = {}
_tables: Dict[str, object] = {}
_scalar_reference: Dict[str, dict] = {}


def topology_for(name: str) -> Dragonfly:
    if name not in _topologies:
        _topologies[name] = Dragonfly(TOPOLOGIES[name])
    return _topologies[name]


def routing_for(case: DifferentialCase):
    routing = make_routing(case.routing)
    if case.table_driven:
        if case.topology not in _tables:
            _tables[case.topology] = compile_dragonfly_tables(
                topology_for(case.topology)
            )
        routing = TableDrivenRouting(routing, _tables[case.topology])
    return routing


def pattern_for(case: DifferentialCase):
    # Same seed derivation as repro.network.sweep.run_point, so corpus
    # cases reproduce what a sweep at this configuration would run.
    return make_pattern(
        case.pattern, topology_for(case.topology), seed=case.config.seed + 17
    )


def run_case(case: DifferentialCase, backend: str):
    sim = make_simulator(
        topology_for(case.topology),
        routing_for(case),
        pattern_for(case),
        case.config,
        backend=backend,
    )
    result = sim.run()
    if backend == "array":
        # The tier the harness thinks it is certifying must be the tier
        # that actually ran: the capability stamped on the contract has
        # to match the provenance the engine recorded.
        contract = contract_for(
            case.config, topology_for(case.topology), routing_for(case)
        )
        info = result.backend_info or {}
        expected = contract.decide_kernel or "none"
        assert info.get("kernel") == expected, (
            f"{case.case_id}: contract expects kernel {expected!r} but the "
            f"array engine recorded {info!r}"
            + (
                f" (contract fallback: {contract.kernel_fallback})"
                if contract.kernel_fallback
                else ""
            )
        )
    return result


def scalar_reference(case: DifferentialCase):
    if case.case_id not in _scalar_reference:
        _scalar_reference[case.case_id] = run_case(case, "scalar")
    return _scalar_reference[case.case_id]


def describe_divergence(case: DifferentialCase) -> str:
    """Locate and format the first state divergence (slow; failure only)."""
    split = first_divergence(
        topology_for(case.topology),
        lambda: routing_for(case),
        lambda: pattern_for(case),
        case.config,
    )
    if split is None:
        return (
            "engines stayed in state lockstep; divergence is in result "
            "bookkeeping (stats/sampling), not the cycle state machine"
        )
    cycle, field, scalar_value, array_value = split
    return (
        f"first divergence at cycle {cycle} in field {field!r}: "
        f"scalar={scalar_value!r} array={array_value!r}"
    )


def assert_contract(case: DifferentialCase, reference, candidate, backend: str) -> None:
    contract = contract_for(case.config)
    if contract.bit_identical:
        if candidate.to_dict() != reference.to_dict():
            detail = (
                describe_divergence(case) if backend == "array"
                else "scalar determinism broke: rerun differs from reference"
            )
            pytest.fail(
                f"{case.case_id}: {backend} backend violates bit-identity "
                f"({contract.note}); {detail}"
            )
        return
    # Tolerance contract: matched seeds, declared statistical agreement.
    assert candidate.saturated == reference.saturated, (
        f"{case.case_id}: backends disagree on saturation; "
        f"{describe_divergence(case)}"
    )
    if not math.isclose(
        candidate.avg_latency,
        reference.avg_latency,
        rel_tol=contract.mean_latency_rtol,
    ):
        pytest.fail(
            f"{case.case_id}: mean latency {candidate.avg_latency} vs "
            f"reference {reference.avg_latency} exceeds "
            f"rtol={contract.mean_latency_rtol} ({contract.note}); "
            f"{describe_divergence(case)}"
        )
    if not math.isclose(
        candidate.accepted_load,
        reference.accepted_load,
        abs_tol=contract.accepted_load_atol,
    ):
        pytest.fail(
            f"{case.case_id}: accepted load {candidate.accepted_load} vs "
            f"{reference.accepted_load} exceeds "
            f"atol={contract.accepted_load_atol}; {describe_divergence(case)}"
        )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("case", CORPUS, ids=[c.case_id for c in CORPUS])
def test_corpus_case(case: DifferentialCase, backend: str):
    assert_contract(case, scalar_reference(case), run_case(case, backend), backend)


class TestGoldenFixtures:
    """Both backends must reproduce the pinned golden sweeps."""

    @pytest.fixture(params=GOLDEN_FIXTURES, ids=[p.stem for p in GOLDEN_FIXTURES])
    def golden(self, request):
        fixture = json.loads(request.param.read_text())
        topology = Dragonfly(DragonflyParams(**fixture["topology"]))
        config = SimulationConfig(**fixture["config"])
        return fixture, topology, config

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fixture_replays(self, golden, backend, monkeypatch):
        fixture, topology, config = golden
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        points = load_sweep(
            topology, fixture["routing"], fixture["pattern"],
            fixture["loads"], config,
        )
        contract = contract_for(config)
        if contract.bit_identical:
            produced = [point.result.to_dict() for point in points]
            assert produced == fixture["points"], (
                f"{backend} backend diverged from pinned fixture "
                f"({contract.note})"
            )
        else:
            for point, pinned in zip(points, fixture["points"]):
                want = SimulationResult.from_dict(pinned)
                assert point.result.saturated == want.saturated
                assert math.isclose(
                    point.result.avg_latency, want.avg_latency,
                    rel_tol=contract.mean_latency_rtol,
                )
                assert math.isclose(
                    point.result.accepted_load, want.accepted_load,
                    abs_tol=contract.accepted_load_atol,
                )


class TestScaleFixture:
    """The 1056-node paper-scale fixture replays on both backends."""

    @pytest.fixture(scope="class")
    def scale(self):
        fixture = json.loads(SCALE_FIXTURE.read_text())
        topology = Dragonfly(DragonflyParams(**fixture["topology"]))
        config = SimulationConfig(**fixture["config"])
        return fixture, topology, config

    def test_paper_scale_parameters(self, scale):
        fixture, topology, _ = scale
        # The paper's maximum single-stage dragonfly: p=h=4, a=8,
        # g=33 -> 1056 terminals, 264 routers.
        assert fixture["topology"] == {"p": 4, "a": 8, "h": 4}
        assert topology.params.num_terminals == 1056
        assert topology.params.num_routers == 264

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fixture_replays(self, scale, backend, monkeypatch):
        fixture, topology, config = scale
        monkeypatch.setenv(BACKEND_ENV_VAR, backend)
        points = load_sweep(
            topology, fixture["routing"], fixture["pattern"],
            fixture["loads"], config,
        )
        assert [p.result.to_dict() for p in points] == fixture["points"], (
            f"{backend} backend diverged from the 1056-node fixture"
        )


class TestArrayBackendInvariants:
    """Satellite: invariant checking must work on the array engine."""

    def test_check_invariants_on_array_backend(self, paper72_dragonfly):
        config = SimulationConfig(
            load=0.3, warmup_cycles=50, measure_cycles=50,
            drain_max_cycles=2000,
        )
        sim = make_simulator(
            paper72_dragonfly,
            make_routing("UGAL-L"),
            make_pattern("uniform_random", paper72_dragonfly, seed=9),
            config,
            backend="array",
        )
        sim.run()
        sim.check_invariants()  # must not raise on array-layout state

    def test_sanitizer_stride_on_array_backend(
        self, paper72_dragonfly, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        monkeypatch.setenv("REPRO_SANITIZE_STRIDE", "8")
        config = SimulationConfig(
            load=0.3, warmup_cycles=50, measure_cycles=50,
            drain_max_cycles=2000,
        )
        sim = make_simulator(
            paper72_dragonfly,
            make_routing("UGAL-L"),
            make_pattern("uniform_random", paper72_dragonfly, seed=9),
            config,
            backend="array",
        )
        result = sim.run()
        assert result.ejected_flits_in_window > 0

    def test_structural_findings_clean_on_both_backends(
        self, paper72_dragonfly
    ):
        from repro.check.sanitizer import structural_findings

        config = SimulationConfig(
            load=0.2, warmup_cycles=30, measure_cycles=30,
            drain_max_cycles=1500,
        )
        for backend in BACKENDS:
            sim = make_simulator(
                paper72_dragonfly,
                make_routing("MIN"),
                make_pattern("uniform_random", paper72_dragonfly, seed=5),
                config,
                backend=backend,
            )
            sim.run()
            assert structural_findings(sim) == [], backend
