"""Parallel sweep execution is bit-identical to serial execution.

The contract of :mod:`repro.network.parallel`: a sweep point is a pure
function of its :class:`PointSpec`, so fanning points across a process
pool changes wall-clock time and nothing else.  These tests pin the
equivalence (the CI workflow re-runs the equivalence class with
``REPRO_SWEEP_WORKERS=2``), the ordered reassembly, the serial
fallback, and the deterministic seed derivation.
"""

import dataclasses
import pickle

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.parallel import (
    PointSpec,
    SweepExecutor,
    derive_seed,
    derive_seeds,
)
from repro.network.replication import replicate
from repro.network.sweep import load_sweep
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(
        load=0.1, seed=5, warmup_cycles=100, measure_cycles=100,
        drain_max_cycles=2000,
    )


def point_dicts(points):
    return [(p.load, p.result.to_dict()) for p in points]


class TestParallelSerialEquivalence:
    LOADS = (0.1, 0.2, 0.3, 0.4)

    def test_four_workers_match_serial(self, df, config):
        """The acceptance-criterion equivalence: 4 workers, same bits."""
        serial = load_sweep(df, "UGAL-L", "uniform_random", self.LOADS, config)
        parallel = load_sweep(
            df, "UGAL-L", "uniform_random", self.LOADS, config,
            executor=SweepExecutor(workers=4),
        )
        assert point_dicts(serial) == point_dicts(parallel)

    def test_two_workers_match_serial_adversarial(self, df, config):
        serial = load_sweep(df, "VAL", "worst_case", (0.05, 0.15), config)
        parallel = load_sweep(
            df, "VAL", "worst_case", (0.05, 0.15), config,
            executor=SweepExecutor(workers=2),
        )
        assert point_dicts(serial) == point_dicts(parallel)

    def test_results_keep_submission_order(self, df, config):
        loads = (0.4, 0.1, 0.3, 0.2)  # deliberately unsorted
        points = load_sweep(
            df, "MIN", "uniform_random", loads, config,
            executor=SweepExecutor(workers=4),
        )
        assert [p.load for p in points] == list(loads)
        assert [p.result.offered_load for p in points] == list(loads)

    def test_env_configured_executor_matches_serial(self, df, config):
        """CI re-runs this class with ``REPRO_SWEEP_WORKERS=2``; locally
        the environment usually selects the serial executor."""
        serial = load_sweep(df, "MIN", "uniform_random", self.LOADS, config)
        from_env = load_sweep(
            df, "MIN", "uniform_random", self.LOADS, config,
            executor=SweepExecutor.from_env(),
        )
        assert point_dicts(serial) == point_dicts(from_env)

    def test_replicate_executor_matches_serial(self, df, config):
        serial = replicate(
            df, lambda: make_routing("MIN"), "uniform_random", config,
            seeds=(1, 2, 3),
        )
        parallel = replicate(
            df, lambda: make_routing("MIN"), "uniform_random", config,
            seeds=(1, 2, 3), executor=SweepExecutor(workers=3),
        )
        assert serial.latency.values == parallel.latency.values
        assert serial.accepted_load.values == parallel.accepted_load.values
        assert serial.saturated_runs == parallel.saturated_runs


class TestSerialFallback:
    def test_single_point_never_forks(self, df, config, monkeypatch):
        """One miss runs in-process even with workers > 1."""
        import repro.network.parallel as parallel_module

        def explode(*args, **kwargs):
            raise AssertionError("pool must not be created for one point")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", explode)
        executor = SweepExecutor(workers=4)
        result = executor.run_point(df, "MIN", "uniform_random", config)
        assert result.routing_name == "MIN"

    def test_unpicklable_topology_degrades_to_serial(self, config):
        topology = Dragonfly(DragonflyParams.paper_example_72())
        topology.unpicklable = lambda: None  # closures cannot pickle
        with pytest.raises(Exception):
            pickle.dumps(topology)
        executor = SweepExecutor(workers=2)
        points = load_sweep(
            topology, "MIN", "uniform_random", (0.1, 0.2), config,
            executor=executor,
        )
        assert executor.stats["fallbacks"] >= 1
        reference = load_sweep(
            Dragonfly(DragonflyParams.paper_example_72()),
            "MIN", "uniform_random", (0.1, 0.2), config,
        )
        assert point_dicts(points) == point_dicts(reference)

    def test_fallback_is_logged_and_surfaced(self, config, caplog):
        """The pre-flight pickle failure is never silent: it is logged,
        kept on the executor, and lands in the summary line."""
        import logging

        topology = Dragonfly(DragonflyParams.paper_example_72())
        topology.unpicklable = lambda: None
        executor = SweepExecutor(workers=2)
        with caplog.at_level(logging.WARNING, logger="repro.network.parallel"):
            load_sweep(
                topology, "MIN", "uniform_random", (0.1, 0.2), config,
                executor=executor,
            )
        assert executor.last_fallback_error is not None
        assert "pickle" in executor.last_fallback_error
        assert any("serial" in record.message for record in caplog.records)
        summary = executor.summary_line()
        assert "fallback" in summary
        assert "pickle" in summary

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(1, 0) == derive_seed(1, 0)
        assert derive_seeds(42, 5) == derive_seeds(42, 5)

    def test_distinct_across_index_and_base(self):
        seeds = derive_seeds(7, 100)
        assert len(set(seeds)) == 100
        assert derive_seed(7, 3) != derive_seed(8, 3)

    def test_pinned_values(self):
        """Cross-platform stability: these values are part of the cache
        contract (replication keys embed derived seeds)."""
        assert derive_seeds(1, 3) == [
            1227844342346046657,
            4533873174211652711,
            8688467253428114782,
        ]

    def test_replicate_accepts_run_count(self, df, config):
        result = replicate(
            df, lambda: make_routing("MIN"), "uniform_random", config, seeds=3
        )
        assert result.accepted_load.runs == 3

    def test_rejects_nonpositive_runs(self):
        with pytest.raises(ValueError):
            derive_seeds(1, 0)


class TestFromEnv:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        executor = SweepExecutor.from_env()
        assert executor.workers == 1
        assert executor.cache is None

    def test_explicit_workers_and_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "cache"))
        executor = SweepExecutor.from_env()
        assert executor.workers == 3
        assert executor.cache is not None
        assert executor.cache.directory == tmp_path / "cache"

    def test_auto_maps_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "auto")
        assert SweepExecutor.from_env().workers == (os.cpu_count() or 1)

    def test_garbage_is_rejected_naming_the_variable(self, monkeypatch):
        # A typo'd setting must fail loudly, not silently run serial
        # (see tests/network/test_env_config.py for the full contract).
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
            SweepExecutor.from_env()


class TestPointSpec:
    def test_hashable_and_picklable(self, config):
        spec = PointSpec("MIN", "uniform_random", config)
        assert spec == pickle.loads(pickle.dumps(spec))
        assert hash(spec) == hash(
            PointSpec("MIN", "uniform_random", dataclasses.replace(config))
        )
