"""Tests for the synthetic traffic patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DragonflyParams
from repro.network.traffic import (
    BitComplement,
    GroupTornado,
    Hotspot,
    RandomPermutation,
    Shift,
    Transpose,
    UniformRandom,
    WorstCase,
    make_pattern,
)
from repro.topology.dragonfly import Dragonfly


@pytest.fixture(scope="module")
def df():
    return Dragonfly(DragonflyParams.paper_example_72())


class TestUniformRandom:
    def test_never_self(self):
        pattern = UniformRandom(16, seed=3)
        for src in range(16):
            for _ in range(50):
                assert pattern(src) != src

    def test_covers_all_destinations(self):
        pattern = UniformRandom(8, seed=4)
        seen = {pattern(0) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_requires_two_terminals(self):
        with pytest.raises(ValueError):
            UniformRandom(1)


class TestWorstCase:
    def test_targets_next_group(self, df):
        pattern = WorstCase(df, seed=5)
        per_group = df.params.terminals_per_group
        for src in range(0, 72, 5):
            dst = pattern(src)
            assert dst // per_group == (src // per_group + 1) % df.g

    def test_randomises_within_group(self, df):
        pattern = WorstCase(df, seed=6)
        destinations = {pattern(0) for _ in range(200)}
        assert len(destinations) == df.params.terminals_per_group

    def test_rejects_zero_offset(self, df):
        with pytest.raises(ValueError):
            WorstCase(df, group_offset=df.g)

    def test_custom_offset(self, df):
        pattern = WorstCase(df, group_offset=3)
        per_group = df.params.terminals_per_group
        assert pattern(0) // per_group == 3


class TestTornado:
    def test_half_way_offset(self, df):
        pattern = GroupTornado(df)
        per_group = df.params.terminals_per_group
        assert pattern(0) // per_group == (df.g + 1) // 2 % df.g


class TestDeterministicPatterns:
    def test_bit_complement_involution(self):
        pattern = BitComplement(64)
        for src in range(64):
            assert pattern(pattern(src)) == src
            assert pattern(src) != src

    def test_bit_complement_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitComplement(72)

    def test_transpose_involution(self):
        pattern = Transpose(64)
        for src in range(64):
            assert pattern(pattern(src)) == src

    def test_transpose_requires_square(self):
        with pytest.raises(ValueError):
            Transpose(72)

    def test_shift(self):
        pattern = Shift(10, offset=3)
        assert pattern(9) == 2

    def test_shift_rejects_identity(self):
        with pytest.raises(ValueError):
            Shift(10, offset=10)


class TestHotspot:
    def test_hot_fraction(self):
        pattern = Hotspot(32, hot_terminal=0, hot_fraction=0.5, seed=7)
        hits = sum(pattern(5) == 0 for _ in range(1000))
        assert 380 <= hits <= 620

    def test_full_hotspot(self):
        pattern = Hotspot(32, hot_terminal=3, hot_fraction=1.0, seed=8)
        assert all(pattern(5) == 3 for _ in range(50))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Hotspot(32, hot_fraction=0.0)


class TestRandomPermutation:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_is_fixed_point_free_permutation(self, seed):
        pattern = RandomPermutation(24, seed=seed)
        image = [pattern(src) for src in range(24)]
        assert sorted(image) == list(range(24))
        assert all(image[src] != src for src in range(24))


class TestFactory:
    @pytest.mark.parametrize("name", [
        "uniform_random", "worst_case", "group_tornado", "shift",
        "hotspot", "random_permutation",
    ])
    def test_known_names(self, df, name):
        pattern = make_pattern(name, df)
        dst = pattern(0)
        assert 0 <= dst < df.num_terminals

    def test_unknown_name(self, df):
        with pytest.raises(ValueError):
            make_pattern("nonsense", df)
