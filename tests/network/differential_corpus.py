"""The backend-differential corpus.

199 simulation configurations, generated programmatically, that the
scalar and array engines must agree on under the equivalence contract
(:func:`repro.network.backend.contract_for`).  The corpus is the
certification artifact for the array backend: it sweeps every routing
algorithm over benign and adversarial traffic on two topologies, and
covers every engine mode with its own block -- saturation, multi-flit
virtual cut-through, request-reply VC classes, bulk (fixed packet
count) termination, table-driven forwarding, seed variation, a
non-zero router pipeline, and a decide-dominated block (adversarial +
bursty traffic, every UGAL variant, including the paper's 1056-node
shape) certifying the batched route-decision kernel.

Kept importable on its own (no pytest dependency) so the harness, the
Hypothesis fuzzer and ad-hoc scripts can all iterate the same cases.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.routing import ALL_ROUTING_NAMES

#: Topology name -> constructor parameters.  ``tiny`` is the smallest
#: interesting dragonfly (N=6); ``paper72`` is the paper's Figure 5
#: example (N=72), big enough for distinct minimal/non-minimal paths.
TOPOLOGIES: Dict[str, DragonflyParams] = {
    "tiny": DragonflyParams(p=1, a=2, h=1),
    "paper72": DragonflyParams.paper_example_72(),
    # The paper's default scale (N=1056): the shape the decide kernel
    # exists for.  Only the "decide" block uses it -- with short
    # windows, so certification stays minutes, not hours.
    "paper1k": DragonflyParams.paper_1k(),
}

#: Short windows: the corpus certifies state-machine equivalence, not
#: steady-state statistics, so runs only need to be long enough to
#: exercise contention, backpressure and drain.
BASE_CONFIG = SimulationConfig(
    load=0.1,
    seed=7,
    warmup_cycles=30,
    measure_cycles=30,
    drain_max_cycles=1500,
)


@dataclasses.dataclass(frozen=True)
class DifferentialCase:
    """One corpus entry: everything needed to build matched runs."""

    case_id: str
    topology: str
    routing: str
    pattern: str
    config: SimulationConfig
    #: Wrap the routing in compiled forwarding tables
    #: (:class:`repro.routing.TableDrivenRouting`).
    table_driven: bool = False


def _config(**overrides) -> SimulationConfig:
    return dataclasses.replace(BASE_CONFIG, **overrides)


def _build_corpus() -> List[DifferentialCase]:
    cases: List[DifferentialCase] = []

    def add(
        block: str,
        topology: str,
        routing: str,
        pattern: str,
        config: SimulationConfig,
        table_driven: bool = False,
    ) -> None:
        case_id = (
            f"{block}-{topology}-{routing}-{pattern}"
            f"-load{config.load}-seed{config.seed}"
        )
        cases.append(
            DifferentialCase(
                case_id, topology, routing, pattern, config, table_driven
            )
        )

    # Block "core": every routing x benign/adversarial traffic on both
    # topologies at a light and a contended load.  2*7*2*2 = 56.
    for topology in ("tiny", "paper72"):
        for routing in ALL_ROUTING_NAMES:
            for pattern in ("uniform_random", "worst_case"):
                for load in (0.1, 0.4):
                    add(
                        "core", topology, routing, pattern,
                        _config(load=load),
                    )

    # Block "pattern": the remaining dragonfly-legal patterns, every
    # routing, light and contended.  7*4*2 = 56.  (transpose needs a
    # square terminal count and bit_complement a power-of-two one;
    # neither holds for N=6 or N=72.)
    for routing in ALL_ROUTING_NAMES:
        for pattern in (
            "random_permutation", "shift", "group_tornado", "hotspot",
        ):
            for load in (0.1, 0.3):
                add("pattern", "paper72", routing, pattern, _config(load=load))

    # Block "saturated": past saturation on the tiny topology, where
    # backpressure, credit starvation and the drain-limit exit dominate.
    # 7*2 = 14.
    for routing in ALL_ROUTING_NAMES:
        for pattern in ("uniform_random", "worst_case"):
            add(
                "saturated", "tiny", routing, pattern,
                _config(load=0.8, drain_max_cycles=800),
            )

    # Block "multiflit": virtual cut-through with 4-flit packets -- the
    # configurations whose contract is tolerance, not bit-identity.
    # 7*2 = 14.
    for routing in ALL_ROUTING_NAMES:
        for pattern in ("uniform_random", "worst_case"):
            add(
                "multiflit", "paper72", routing, pattern,
                _config(load=0.2, packet_size=4, drain_max_cycles=2500),
            )

    # Block "reqreply": two VC classes, replies injected at delivery.
    # 7*2 = 14.
    for routing in ALL_ROUTING_NAMES:
        for pattern in ("uniform_random", "worst_case"):
            add(
                "reqreply", "paper72", routing, pattern,
                _config(num_vcs=6, request_reply=True, drain_max_cycles=2500),
            )

    # Block "bulk": fixed packets-per-terminal termination instead of a
    # timed window.  2*7 = 14.
    for topology in ("tiny", "paper72"):
        for routing in ALL_ROUTING_NAMES:
            add(
                "bulk", topology, routing, "uniform_random",
                _config(
                    load=0.3, packets_per_terminal=20,
                    warmup_cycles=10, measure_cycles=10,
                ),
            )

    # Block "table": the same decisions routed through compiled
    # forwarding tables, which take the plan-cache/hop-key paths in the
    # arrival loop.  7 cases.
    for routing in ALL_ROUTING_NAMES:
        add(
            "table", "paper72", routing, "uniform_random",
            _config(load=0.2), table_driven=True,
        )

    # Block "pipeline": non-zero per-router pipeline latency.  3*2 = 6.
    for routing in ("MIN", "VAL", "UGAL-L"):
        for pattern in ("uniform_random", "worst_case"):
            add(
                "pipeline", "paper72", routing, pattern,
                _config(load=0.2, router_pipeline_cycles=2),
            )

    # Block "decide": decide-dominated certification for the batched
    # route-decision kernel.  Adversarial traffic keeps the UGAL
    # minimal/non-minimal comparison live (both queue reads matter and
    # Valiant draws burn the route RNG), and the bursty inter-group
    # pattern flips the congested group mid-run so table-lowered
    # first-hop decisions are exercised across many (source, dest-group)
    # pairs.  Every UGAL variant on paper72, 5*2 = 10; plus the paper's
    # 1056-node shape -- the scale the kernel exists for -- with short
    # windows so the scalar reference stays affordable.  5.
    ugal_variants = tuple(
        name for name in ALL_ROUTING_NAMES if name.startswith("UGAL")
    )
    for routing in ugal_variants:
        for pattern in ("worst_case", "bursty"):
            add("decide", "paper72", routing, pattern, _config(load=0.4))
    for routing in ugal_variants:
        add(
            "decide", "paper1k", routing, "worst_case",
            _config(
                load=0.3, warmup_cycles=10, measure_cycles=10,
                drain_max_cycles=800,
            ),
        )

    # Block "seed": RNG-stream variation on one contended case.  3.
    for seed in (11, 12, 13):
        add(
            "seed", "paper72", "UGAL-L", "uniform_random",
            _config(load=0.2, seed=seed),
        )

    return cases


CORPUS: Tuple[DifferentialCase, ...] = tuple(_build_corpus())

# The corpus is a certification surface; its size is pinned so a block
# cannot silently shrink during a refactor.
assert len(CORPUS) == 199, f"corpus size drifted: {len(CORPUS)}"
assert len({case.case_id for case in CORPUS}) == len(CORPUS), (
    "duplicate corpus case ids"
)


def corpus_case(case_id: str) -> Optional[DifferentialCase]:
    """Look up one corpus entry by id (None when absent)."""
    for case in CORPUS:
        if case.case_id == case_id:
            return case
    return None
