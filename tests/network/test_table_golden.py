"""Round-trip contract: export -> import -> simulate is bit-identical.

Every golden fixture is re-simulated with the table-driven executor --
the base algorithm's compiled tables pushed through a full JSON
export/import cycle -- and must reproduce the checked-in points bit for
bit.  Because :class:`TableDrivenRouting` overrides ``next_hop``, the
simulator's hop cache is disabled and the imported tables are consulted
for every hop of every flit: this certifies the deployed table files,
not a memo of the routing code.
"""

import json
import pathlib

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.sweep import run_point
from repro.routing.tables import (
    ForwardingTables,
    TableDrivenRouting,
    compile_dragonfly_tables,
)
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"
FIXTURES = sorted(GOLDEN_DIR.glob("*.json"))


@pytest.fixture(params=FIXTURES, ids=[path.stem for path in FIXTURES])
def golden(request):
    fixture = json.loads(request.param.read_text())
    topology = Dragonfly(DragonflyParams(**fixture["topology"]))
    config = SimulationConfig(**fixture["config"])
    return fixture, topology, config


def test_table_driven_simulation_matches_golden(golden, tmp_path):
    fixture, topology, config = golden
    tables = compile_dragonfly_tables(topology)
    path = tmp_path / "tables.json"
    tables.dump(str(path))
    imported = ForwardingTables.load(str(path))
    assert imported == tables

    for load, expected in zip(fixture["loads"], fixture["points"]):
        routing = TableDrivenRouting(make_routing(fixture["routing"]), imported)
        result = run_point(
            topology, routing, fixture["pattern"], config.with_load(load)
        )
        assert result.to_dict() == expected, (
            f"{fixture['routing']} diverged at load {load}"
        )
