"""Tests for the measurement/statistics containers."""

import math

import pytest

from repro.network.stats import LatencySample, SimulationResult


def _result(latencies=(), minimal=(), drained=True, **kwargs):
    samples = [
        LatencySample(latency=lat, minimal=is_min)
        for lat, is_min in zip(latencies, minimal)
    ]
    defaults = dict(
        routing_name="MIN",
        pattern_name="uniform_random",
        offered_load=0.2,
        num_terminals=10,
        measure_cycles=100,
        drained=drained,
        samples=samples,
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestLatencyStats:
    def test_average(self):
        result = _result([10, 20, 30], [True, True, False])
        assert result.avg_latency == 20

    def test_per_class_averages(self):
        result = _result([10, 20, 40], [True, True, False])
        assert result.avg_minimal_latency == 15
        assert result.avg_nonminimal_latency == 40

    def test_minimal_fraction(self):
        result = _result([1, 2, 3, 4], [True, False, True, True])
        assert result.minimal_fraction == 0.75

    def test_empty_samples_nan(self):
        result = _result()
        assert math.isnan(result.avg_latency)
        assert math.isnan(result.minimal_fraction)

    def test_percentiles(self):
        result = _result(list(range(1, 101)), [True] * 100)
        assert result.latency_percentile(0) == 1
        assert result.latency_percentile(100) == 100
        assert abs(result.latency_percentile(50) - 50.5) < 1e-9

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            _result([1], [True]).latency_percentile(101)


class TestHistogram:
    def test_bins_and_fractions(self):
        result = _result([0, 1, 2, 10, 11], [True] * 5)
        histogram = dict(result.latency_histogram(bin_width=5))
        assert histogram[0] == pytest.approx(3 / 5)
        assert histogram[10] == pytest.approx(2 / 5)

    def test_minimal_only_filter_is_relative_to_all(self):
        result = _result([0, 0, 10], [True, False, True])
        minimal = dict(result.latency_histogram(bin_width=5, minimal_only=True))
        assert minimal[0] == pytest.approx(1 / 3)
        assert minimal[10] == pytest.approx(1 / 3)

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            _result([1], [True]).latency_histogram(bin_width=0)


class TestThroughput:
    def test_accepted_load(self):
        result = _result(ejected_flits_in_window=500)
        assert result.accepted_load == pytest.approx(0.5)

    def test_channel_utilization(self):
        result = _result(global_channel_flits={4: 50, 7: 100})
        util = result.global_channel_utilization()
        assert util == {4: 0.5, 7: 1.0}

    def test_saturated_flag(self):
        assert _result(drained=False).saturated
        assert not _result(drained=True).saturated

    def test_summary_contains_key_fields(self):
        text = _result([5], [True]).summary()
        assert "MIN" in text and "load=0.200" in text
