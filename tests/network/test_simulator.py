"""Tests for the cycle-accurate simulator: conservation, latency
accounting, flow-control invariants, determinism and throughput caps."""

import dataclasses

import pytest

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator, simulate
from repro.network.traffic import UniformRandom, WorstCase, make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


def run(
    topology,
    routing_name="MIN",
    pattern_name="uniform_random",
    **config_kwargs,
):
    defaults = dict(
        load=0.1, warmup_cycles=200, measure_cycles=200, drain_max_cycles=4000
    )
    defaults.update(config_kwargs)
    config = SimulationConfig(**defaults)
    pattern = make_pattern(pattern_name, topology, seed=config.seed + 17)
    simulator = Simulator(topology, make_routing(routing_name), pattern, config)
    result = simulator.run()
    return simulator, result


class TestConservation:
    def test_all_tagged_packets_drain_at_low_load(self, paper72_dragonfly):
        _, result = run(paper72_dragonfly, load=0.1)
        assert result.drained
        assert result.unfinished_tagged == 0
        assert result.samples  # something was measured

    def test_flow_control_invariants_hold_after_run(self, paper72_dragonfly):
        simulator, _ = run(paper72_dragonfly, load=0.3)
        simulator.check_invariants()

    def test_invariants_under_worst_case_overload(self, paper72_dragonfly):
        simulator, _ = run(
            paper72_dragonfly,
            routing_name="MIN",
            pattern_name="worst_case",
            load=0.4,
            drain_max_cycles=500,
        )
        simulator.check_invariants()


class TestLatencyAccounting:
    def test_zero_load_latency_is_hops_plus_ejection(self, paper72_dragonfly):
        """At vanishing load every packet sails through: latency equals
        channel hops (1 cycle each) + terminal ejection latency."""
        _, result = run(paper72_dragonfly, load=0.005, routing_name="MIN")
        # Minimal routes have 0..3 channel hops; + 1 cycle ejection.
        # Rare same-cycle collisions can add a cycle or two even at
        # vanishing load.
        assert result.samples
        assert result.latency_percentile(90) <= 4
        for sample in result.samples:
            assert 1 <= sample.latency <= 8

    def test_valiant_zero_load_latency_bounded_by_five_hops(self, paper72_dragonfly):
        _, result = run(paper72_dragonfly, load=0.005, routing_name="VAL")
        assert result.latency_percentile(90) <= 6
        for sample in result.samples:
            assert 1 <= sample.latency <= 10

    def test_latency_includes_source_queueing(self, paper72_dragonfly):
        """Beyond saturation, source queues grow and measured latency
        must reflect it (MIN on worst-case at twice the capacity)."""
        _, low = run(paper72_dragonfly, pattern_name="worst_case", load=0.05)
        _, high = run(
            paper72_dragonfly,
            pattern_name="worst_case",
            load=0.25,
            drain_max_cycles=30_000,
        )
        if high.drained:
            assert high.avg_latency > 4 * low.avg_latency


class TestDeterminism:
    def test_same_seed_same_result(self, paper72_dragonfly):
        _, first = run(paper72_dragonfly, load=0.2, seed=42)
        _, second = run(paper72_dragonfly, load=0.2, seed=42)
        assert first.latencies == second.latencies
        assert first.ejected_flits_in_window == second.ejected_flits_in_window

    def test_different_seed_differs(self, paper72_dragonfly):
        _, first = run(paper72_dragonfly, load=0.2, seed=1)
        _, second = run(paper72_dragonfly, load=0.2, seed=2)
        assert first.latencies != second.latencies


class TestThroughput:
    def test_accepted_tracks_offered_below_saturation(self, paper72_dragonfly):
        _, result = run(paper72_dragonfly, load=0.3, measure_cycles=500)
        assert result.accepted_load == pytest.approx(0.3, abs=0.05)

    def test_min_worst_case_caps_at_1_over_ah(self, paper72_dragonfly):
        """The paper's bound: MIN throughput on WC traffic is 1/(a*h)."""
        bound = 1.0 / (paper72_dragonfly.a * paper72_dragonfly.h)
        _, result = run(
            paper72_dragonfly,
            routing_name="MIN",
            pattern_name="worst_case",
            load=0.4,
            warmup_cycles=500,
            measure_cycles=500,
            drain_max_cycles=1000,
        )
        assert result.accepted_load == pytest.approx(bound, rel=0.15)

    def test_global_channel_utilization_bounded(self, paper72_dragonfly):
        _, result = run(
            paper72_dragonfly, pattern_name="worst_case", load=0.2,
            routing_name="UGAL-G", measure_cycles=400,
        )
        for utilization in result.global_channel_utilization().values():
            assert 0.0 <= utilization <= 1.0

    def test_min_overloaded_worst_case_shows_saturation(self, paper72_dragonfly):
        """Well past capacity: accepted load pins at the bound and the
        tagged packets' latency reflects the growing source queues."""
        _, result = run(
            paper72_dragonfly,
            routing_name="MIN",
            pattern_name="worst_case",
            load=0.5,
            drain_max_cycles=30_000,
        )
        assert result.accepted_load < 0.2
        assert result.saturated or result.avg_latency > 50


class TestRoutingClassification:
    def test_min_marks_all_packets_minimal(self, paper72_dragonfly):
        _, result = run(paper72_dragonfly, routing_name="MIN", load=0.2)
        assert result.minimal_fraction == 1.0

    def test_valiant_marks_most_packets_nonminimal(self, paper72_dragonfly):
        _, result = run(paper72_dragonfly, routing_name="VAL", load=0.2)
        # Degenerate Valiant routes (intermediate == destination group)
        # stay minimal with probability ~1/(g-1).
        assert result.minimal_fraction < 0.35


class TestMultiFlitPackets:
    def test_packets_arrive_whole(self, paper72_dragonfly):
        _, result = run(
            paper72_dragonfly,
            load=0.2,
            packet_size=4,
            measure_cycles=300,
        )
        assert result.drained
        assert result.samples

    def test_invariants_with_multi_flit(self, paper72_dragonfly):
        simulator, _ = run(paper72_dragonfly, load=0.3, packet_size=4)
        simulator.check_invariants()

    def test_serialization_latency(self, paper72_dragonfly):
        """A 4-flit packet's tail trails the head by >= 3 cycles."""
        _, single = run(paper72_dragonfly, load=0.01, packet_size=1)
        _, multi = run(paper72_dragonfly, load=0.04, packet_size=4)
        assert multi.avg_latency >= single.avg_latency + 3 - 0.5

    def test_flit_conservation(self, paper72_dragonfly):
        _, result = run(paper72_dragonfly, load=0.2, packet_size=2)
        # Accepted flit load tracks offered flit load.
        assert result.accepted_load == pytest.approx(0.2, abs=0.06)

    def test_paper_footnote6_trends_unchanged(self, paper72_dragonfly):
        """Footnote 6: multi-flit packets with virtual cut-through do not
        change the trends -- MIN still caps at 1/(a*h) on WC traffic."""
        bound = 1.0 / (paper72_dragonfly.a * paper72_dragonfly.h)
        _, result = run(
            paper72_dragonfly,
            routing_name="MIN",
            pattern_name="worst_case",
            load=0.4,
            packet_size=4,
            warmup_cycles=600,
            measure_cycles=600,
            drain_max_cycles=1000,
        )
        assert result.accepted_load == pytest.approx(bound, rel=0.2)


class TestCreditRoundTripMechanism:
    def test_td_registers_rise_under_congestion(self, paper72_dragonfly):
        simulator, _ = run(
            paper72_dragonfly,
            routing_name="UGAL-L_CR",
            pattern_name="worst_case",
            load=0.3,
            drain_max_cycles=2000,
        )
        max_td = max(simulator._td)
        assert max_td > 0

    def test_td_stays_zero_at_trivial_load(self, paper72_dragonfly):
        simulator, _ = run(
            paper72_dragonfly,
            routing_name="UGAL-L_CR",
            load=0.01,
        )
        max_td = max(simulator._td)
        assert max_td <= 2  # at most scheduling jitter

    def test_mechanism_disabled_for_other_algorithms(self, paper72_dragonfly):
        simulator, _ = run(
            paper72_dragonfly,
            routing_name="UGAL-L_VCH",
            pattern_name="worst_case",
            load=0.3,
        )
        assert not simulator._credit_delay_enabled
        assert all(not queue for queue in simulator._ctq)

    def test_cr_reduces_intermediate_latency(self, paper72_dragonfly):
        """The headline Figure 16 effect at unit-test scale."""
        _, vch = run(
            paper72_dragonfly,
            routing_name="UGAL-L_VCH",
            pattern_name="worst_case",
            load=0.3,
            warmup_cycles=600,
            measure_cycles=600,
        )
        _, cr = run(
            paper72_dragonfly,
            routing_name="UGAL-L_CR",
            pattern_name="worst_case",
            load=0.3,
            warmup_cycles=600,
            measure_cycles=600,
        )
        assert cr.avg_latency < vch.avg_latency


class TestTinyNetwork:
    def test_smallest_dragonfly_simulates(self, tiny_dragonfly):
        _, result = run(tiny_dragonfly, load=0.2)
        assert result.drained

    def test_all_routings_work_on_tiny(self, tiny_dragonfly):
        for name in ("MIN", "VAL", "UGAL-L", "UGAL-G", "UGAL-L_VC",
                     "UGAL-L_VCH", "UGAL-L_CR"):
            _, result = run(tiny_dragonfly, routing_name=name, load=0.2)
            assert result.drained, name


class TestSimulateHelper:
    def test_one_shot(self, tiny_dragonfly):
        config = SimulationConfig(
            load=0.1, warmup_cycles=100, measure_cycles=100, drain_max_cycles=2000
        )
        pattern = UniformRandom(tiny_dragonfly.num_terminals, seed=9)
        result = simulate(tiny_dragonfly, make_routing("MIN"), pattern, config)
        assert result.routing_name == "MIN"
        assert result.pattern_name == "uniform_random"


class TestSourceQueueMetric:
    def test_below_saturation_queues_empty(self, paper72_dragonfly):
        _, result = run(paper72_dragonfly, load=0.1)
        assert result.avg_source_queue_at_end < 1.0

    def test_beyond_saturation_queues_grow(self, paper72_dragonfly):
        _, result = run(
            paper72_dragonfly,
            routing_name="MIN",
            pattern_name="worst_case",
            load=0.3,
            drain_max_cycles=500,
        )
        assert result.avg_source_queue_at_end > 10.0

    def test_metric_scales_with_overload_duration(self, paper72_dragonfly):
        _, short = run(
            paper72_dragonfly, routing_name="MIN", pattern_name="worst_case",
            load=0.3, measure_cycles=200, drain_max_cycles=500,
        )
        _, long = run(
            paper72_dragonfly, routing_name="MIN", pattern_name="worst_case",
            load=0.3, measure_cycles=600, drain_max_cycles=500,
        )
        assert long.avg_source_queue_at_end > 1.5 * short.avg_source_queue_at_end
