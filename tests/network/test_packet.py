"""Tests for packets, flits and route plans."""

import pytest

from repro.network.packet import Packet, RoutePlan, make_flits


def _packet(size=1):
    return Packet(
        index=0, src_terminal=0, dst_terminal=5, creation_time=10, size=size
    )


class TestMakeFlits:
    def test_single_flit(self):
        (flit,) = make_flits(_packet(1))
        assert flit.is_head and flit.is_tail

    def test_two_flits(self):
        head, tail = make_flits(_packet(2))
        assert head.is_head and not head.is_tail
        assert tail.is_tail and not tail.is_head

    def test_many_flits(self):
        flits = make_flits(_packet(5))
        assert len(flits) == 5
        assert flits[0].is_head
        assert flits[-1].is_tail
        for body in flits[1:-1]:
            assert not body.is_head and not body.is_tail

    def test_invalid_size(self):
        packet = _packet(1)
        packet.size = 0
        with pytest.raises(ValueError):
            make_flits(packet)


class TestPacketAccounting:
    def test_latency_requires_ejection(self):
        packet = _packet()
        with pytest.raises(ValueError):
            _ = packet.latency

    def test_latency_spans_creation_to_ejection(self):
        packet = _packet()
        packet.eject_time = 42
        assert packet.latency == 32

    def test_is_minimal_requires_plan(self):
        packet = _packet()
        with pytest.raises(ValueError):
            _ = packet.is_minimal
        packet.plan = RoutePlan(minimal=True)
        assert packet.is_minimal


class TestRoutePlan:
    def test_global_hop_count(self):
        assert RoutePlan(minimal=True).num_global_hops == 0
        from repro.topology.dragonfly import GlobalLink

        link = GlobalLink(0, 5, 4, 1)
        assert RoutePlan(minimal=True, gc1=link).num_global_hops == 1
        assert RoutePlan(minimal=False, gc1=link, gc2=link).num_global_hops == 2
