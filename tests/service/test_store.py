"""Result store: indexed puts, queries, figure tags, gc/reindex."""

import json

import pytest

from repro.network.parallel import _run_spec
from repro.service.store import ResultStore


@pytest.fixture()
def populated(tmp_path, tiny_manifest):
    """A store holding the tiny manifest's six points."""
    store = ResultStore(tmp_path / "store")
    topology = tiny_manifest.topology.build()
    units = tiny_manifest.work_units(topology)
    for unit in units:
        result = _run_spec(topology, unit.spec)
        store.put(unit.key, result, figure=tiny_manifest.figure)
    return store, topology, units


@pytest.fixture()
def mixed_backends(tmp_path, tiny_manifest):
    """A store whose six points carry three distinct engine provenances:
    scalar, array-with-kernel, and array-with-kernel-fallback (the shape
    ``DegradedTableRouting`` produces -- no kernel lowering)."""
    store = ResultStore(tmp_path / "store")
    topology = tiny_manifest.topology.build()
    units = tiny_manifest.work_units(topology)
    provenances = [
        {"backend": "scalar", "kernel": "none"},
        {"backend": "array", "kernel": "ugal"},
        {
            "backend": "array",
            "kernel": "none",
            "kernel_fallback": (
                "routing DegradedTableRouting has no kernel lowering"
            ),
        },
    ]
    for index, unit in enumerate(units):
        result = _run_spec(topology, unit.spec)
        result.backend_info = dict(provenances[index % len(provenances)])
        store.put(unit.key, result, figure=tiny_manifest.figure)
    return store, units


class TestPutGetQuery:
    def test_put_then_get_round_trips(self, populated):
        store, topology, units = populated
        for unit in units:
            result = store.get(unit.key)
            assert result is not None
            assert result.to_dict() == _run_spec(topology, unit.spec).to_dict()

    def test_query_by_figure(self, populated):
        store, _, units = populated
        points = store.query(figure="figtest")
        assert len(points) == len(units)
        assert store.query(figure="other") == []

    def test_query_by_routing_and_load_range(self, populated):
        store, _, _ = populated
        points = store.query(routing="MIN", min_load=0.15, max_load=0.35)
        assert [p.load for p in points] == [0.2, 0.3]
        assert all(p.routing == "MIN" for p in points)

    def test_query_orders_like_a_figure_table(self, populated):
        store, _, _ = populated
        points = store.query(figure="figtest")
        keys = [(p.routing, p.pattern, p.load, p.seed) for p in points]
        assert keys == sorted(keys)

    def test_query_by_digest_prefix(self, populated):
        store, _, units = populated
        points = store.query(digest=units[0].digest[:12])
        assert [p.digest for p in points] == [units[0].digest]

    def test_query_with_predicate(self, populated):
        store, _, _ = populated
        points = store.query(predicate=lambda p: p.load > 0.25)
        assert all(p.load > 0.25 for p in points)
        assert points

    def test_stored_point_result_is_bit_exact(self, populated):
        store, topology, units = populated
        point = store.query(digest=units[0].digest)[0]
        assert point.result().to_dict() == _run_spec(topology, units[0].spec).to_dict()

    def test_query_never_simulates(self, populated, monkeypatch):
        store, _, _ = populated
        import repro.network.sweep as sweep

        def explode(*args, **kwargs):
            raise AssertionError("query must not simulate")

        monkeypatch.setattr(sweep, "run_point", explode)
        assert len(store.query(figure="figtest")) == 6


class TestBackendProvenance:
    def test_query_filters_by_backend(self, mixed_backends):
        store, units = mixed_backends
        scalar = store.query(backend="scalar")
        array = store.query(backend="array")
        assert len(scalar) == 2
        assert len(array) == 4
        assert len(scalar) + len(array) == len(units)
        assert all(p.backend == "scalar" for p in scalar)
        assert all(p.backend == "array" for p in array)

    def test_backend_filter_composes_with_others(self, mixed_backends):
        store, _ = mixed_backends
        points = store.query(figure="figtest", backend="array", routing="MIN")
        assert points
        assert all(
            p.backend == "array" and p.routing == "MIN" for p in points
        )

    def test_kernel_provenance_survives_the_index(self, mixed_backends, tmp_path):
        _, units = mixed_backends
        fresh = ResultStore(tmp_path / "store")
        kernels = {p.kernel for p in fresh.query(backend="array")}
        assert kernels == {"ugal", "none"}

    def test_engine_column_distinguishes_kernel_and_fallback(
        self, mixed_backends
    ):
        from repro.service.status import render_query_rows

        store, _ = mixed_backends
        rendered = render_query_rows(store.query(figure="figtest"))
        lines = rendered.splitlines()
        assert "engine" in lines[0]
        engines = {line.split()[7] for line in lines[1:]}
        # Kernel-fallback points render as bare "array" (kernel "none"),
        # kernel-lowered points as "array/ugal".
        assert engines == {"scalar", "array", "array/ugal"}

    def test_unknown_backend_matches_nothing(self, mixed_backends):
        store, _ = mixed_backends
        assert store.query(backend="quantum") == []


class TestFigureTags:
    def test_second_figure_tag_merges(self, populated):
        store, _, units = populated
        store.tag(units[0].key, "other")
        point = store.query(digest=units[0].digest)[0]
        assert point.figures == ["figtest", "other"]
        # The point is served to both figure queries.
        assert store.query(figure="other")[0].digest == units[0].digest

    def test_figures_summary_counts(self, populated):
        store, _, units = populated
        assert store.figures() == {"figtest": len(units)}


class TestMaintenance:
    def test_index_survives_fresh_handle(self, populated, tmp_path):
        _, _, units = populated
        fresh = ResultStore(tmp_path / "store")
        assert len(fresh) == len(units)

    def test_reindex_recovers_unindexed_records(self, populated, tmp_path):
        store, _, units = populated
        store.index_path.unlink()
        fresh = ResultStore(tmp_path / "store")
        assert len(fresh) == 0
        counts = fresh.reindex()
        assert counts["indexed"] == len(units)
        assert counts["recovered"] == len(units)
        # Figure tags lived only in the index; recovered points are adhoc.
        assert fresh.figures() == {"adhoc": len(units)}

    def test_reindex_preserves_existing_tags(self, populated):
        store, _, units = populated
        counts = store.reindex()
        assert counts == {
            "indexed": len(units), "recovered": 0, "dropped": 0, "corrupt": 0,
        }
        assert store.figures() == {"figtest": len(units)}

    def test_gc_drops_stale_index_entries_and_litter(self, populated):
        store, _, units = populated
        victim = store.points_dir / f"{units[0].digest}.json"
        victim.unlink()
        (store.points_dir / "leftover.tmp").write_text("junk")
        counts = store.gc()
        assert counts["indexed"] == len(units) - 1
        assert counts["dropped"] == 1
        assert counts["tmp_removed"] == 1
        assert len(store.query(figure="figtest")) == len(units) - 1

    def test_gc_skips_corrupt_records(self, populated):
        store, _, units = populated
        (store.points_dir / f"{units[0].digest}.json").write_text("{not json")
        counts = store.gc()
        assert counts["corrupt"] == 1
        assert counts["indexed"] == len(units) - 1

    def test_unknown_index_layout_is_rebuilt_not_trusted(self, populated, tmp_path):
        store, _, units = populated
        store.index_path.write_text(json.dumps({"schema": 999, "points": {}}))
        fresh = ResultStore(tmp_path / "store")
        assert len(fresh) == 0
        assert fresh.reindex()["indexed"] == len(units)
