"""Manifest identity, decomposition and figure presets."""

import json

import pytest

from repro.network.cache import key_digest, point_key
from repro.service.manifest import (
    SweepManifest,
    TopologySpec,
    manifests_for_figure,
)


class TestTopologySpec:
    def test_build_matches_spec(self, tiny_spec):
        topology = tiny_spec.build()
        assert (topology.params.p, topology.params.a, topology.params.h) == (1, 2, 1)

    def test_bad_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            TopologySpec(family="torus", p=1, a=2, h=1)

    def test_bad_params_fail_at_submission(self):
        with pytest.raises(Exception):
            TopologySpec(family="dragonfly", p=0, a=2, h=1)

    def test_round_trip(self, tiny_spec):
        assert TopologySpec.from_dict(tiny_spec.to_dict()) == tiny_spec


class TestSweepManifest:
    def test_unit_count_is_grid_size(self, tiny_manifest):
        assert tiny_manifest.num_units() == 2 * 1 * 3 * 1
        units = tiny_manifest.work_units()
        assert len(units) == tiny_manifest.num_units()
        assert [u.index for u in units] == list(range(len(units)))

    def test_units_are_content_addressed(self, tiny_manifest):
        topology = tiny_manifest.topology.build()
        for unit in tiny_manifest.work_units(topology):
            expected = point_key(
                topology,
                unit.spec.routing_name,
                unit.spec.pattern_name,
                unit.spec.config,
            )
            assert unit.key == expected
            assert unit.digest == key_digest(expected)

    def test_digest_stable_across_json_round_trip(self, tiny_manifest):
        data = json.loads(json.dumps(tiny_manifest.to_dict()))
        clone = SweepManifest.from_dict(data)
        assert clone == tiny_manifest
        assert clone.digest == tiny_manifest.digest
        assert clone.job_id == tiny_manifest.job_id

    def test_digest_changes_with_grid(self, tiny_manifest):
        import dataclasses

        widened = dataclasses.replace(tiny_manifest, loads=(0.1, 0.2, 0.3, 0.4))
        assert widened.digest != tiny_manifest.digest

    def test_unknown_routing_rejected(self, tiny_spec, tiny_config):
        with pytest.raises(ValueError, match="routing"):
            SweepManifest(
                figure="x",
                topology=tiny_spec,
                routings=("BOGUS",),
                patterns=("uniform_random",),
                loads=(0.1,),
                seeds=(1,),
                config=tiny_config,
            )

    def test_empty_grid_axis_rejected(self, tiny_spec, tiny_config):
        with pytest.raises(ValueError, match="loads"):
            SweepManifest(
                figure="x",
                topology=tiny_spec,
                routings=("MIN",),
                patterns=("uniform_random",),
                loads=(),
                seeds=(1,),
                config=tiny_config,
            )

    def test_out_of_range_load_rejected(self, tiny_spec, tiny_config):
        with pytest.raises(ValueError, match="loads"):
            SweepManifest(
                figure="x",
                topology=tiny_spec,
                routings=("MIN",),
                patterns=("uniform_random",),
                loads=(1.5,),
                seeds=(1,),
                config=tiny_config,
            )


class TestFigurePresets:
    def test_fig09_preset(self):
        manifests = manifests_for_figure("fig09", quick=True)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert manifest.figure == "fig09"
        assert manifest.routings == ("UGAL-L", "UGAL-G")
        assert manifest.patterns == ("worst_case",)

    def test_loads_override(self):
        (manifest,) = manifests_for_figure("fig09", quick=True, loads=[0.05, 0.1])
        assert manifest.loads == (0.05, 0.1)

    def test_depth_figures_expand_to_one_manifest_per_depth(self):
        manifests = manifests_for_figure("fig14", quick=True)
        depths = sorted(m.config.vc_buffer_depth for m in manifests)
        assert depths == [4, 8, 16, 32, 64]
        assert {m.figure for m in manifests} == {"fig14"}

    def test_every_preset_decomposes(self):
        for figure in ("fig08", "fig09", "fig10", "fig11", "fig12", "fig14", "fig16"):
            for manifest in manifests_for_figure(figure, quick=True):
                assert manifest.num_units() > 0

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="no sweep preset"):
            manifests_for_figure("fig99")
