"""Scheduler: inline/pool runs, journaling, retries, crash recovery."""

import pytest

from repro.network.parallel import _run_spec
from repro.service.journal import Journal
from repro.service.scheduler import (
    SchedulerOptions,
    ServiceError,
    SweepScheduler,
    run_manifest,
)
from repro.service.store import ResultStore


def reference_dicts(manifest):
    """Serial ground truth for every unit of the manifest, in order."""
    topology = manifest.topology.build()
    return [
        _run_spec(topology, unit.spec).to_dict()
        for unit in manifest.work_units(topology)
    ]


def make_scheduler(tmp_path, manifest, units=None, **option_kwargs):
    store = ResultStore(tmp_path / "store")
    topology = manifest.topology.build()
    all_units = manifest.work_units(topology)
    option_kwargs.setdefault("backoff_base", 0.01)
    return SweepScheduler(
        store=store,
        topology=topology,
        units=all_units if units is None else units,
        job_dir=tmp_path / "jobs" / manifest.job_id,
        options=SchedulerOptions(**option_kwargs),
        figure=manifest.figure,
    )


def counting_run_point(monkeypatch):
    """Patch ``sweep.run_point`` with a pass-through call counter."""
    import repro.network.sweep as sweep

    calls = []
    real = sweep.run_point

    def counted(topology, routing, pattern, config):
        calls.append(pattern)
        return real(topology, routing, pattern, config)

    monkeypatch.setattr(sweep, "run_point", counted)
    return calls


class TestInlineExecution:
    def test_run_matches_serial_reference(self, tmp_path, tiny_manifest):
        scheduler = make_scheduler(tmp_path, tiny_manifest)
        report = scheduler.run()
        produced = [
            r.to_dict()
            for r in report.ordered_results(tiny_manifest.num_units())
        ]
        assert produced == reference_dicts(tiny_manifest)
        assert report.progress.simulated == tiny_manifest.num_units()
        assert report.progress.failed == 0

    def test_journal_records_the_whole_lifecycle(self, tmp_path, tiny_manifest):
        scheduler = make_scheduler(tmp_path, tiny_manifest)
        scheduler.run()
        state = Journal(scheduler.job_dir / "journal.jsonl").replay()
        assert state.complete
        expected = {unit.digest for unit in scheduler.units}
        assert set(state.done) == expected
        assert state.attempts == {digest: 1 for digest in expected}
        kinds = [e["event"] for e in state.events]
        assert kinds[0] == "job"
        assert kinds[-1] == "complete"

    def test_rerun_serves_everything_from_the_store(
        self, tmp_path, tiny_manifest, monkeypatch
    ):
        make_scheduler(tmp_path, tiny_manifest).run()
        calls = counting_run_point(monkeypatch)
        report = make_scheduler(tmp_path, tiny_manifest).run()
        assert calls == []
        assert report.progress.cached == tiny_manifest.num_units()
        assert report.progress.journaled == tiny_manifest.num_units()
        assert report.progress.simulated == 0
        assert report.progress.hit_rate == 1.0

    def test_resume_simulates_only_the_remainder(
        self, tmp_path, tiny_manifest, monkeypatch
    ):
        partial = make_scheduler(tmp_path, tiny_manifest)
        partial.units = partial.units[:2]
        partial.run()

        calls = counting_run_point(monkeypatch)
        full = make_scheduler(tmp_path, tiny_manifest)
        report = full.run(on_progress=lambda p: None)
        assert len(calls) == tiny_manifest.num_units() - 2
        assert report.progress.journaled == 2
        produced = [
            r.to_dict()
            for r in report.ordered_results(tiny_manifest.num_units())
        ]
        assert produced == reference_dicts(tiny_manifest)

    def test_recompute_event_when_record_vanished(self, tmp_path, tiny_manifest):
        scheduler = make_scheduler(tmp_path, tiny_manifest)
        scheduler.run()
        victim = scheduler.units[0]
        (scheduler.store.points_dir / f"{victim.digest}.json").unlink()
        report = make_scheduler(tmp_path, tiny_manifest).run()
        assert report.progress.simulated == 1
        assert report.progress.cached == tiny_manifest.num_units() - 1
        state = Journal(scheduler.job_dir / "journal.jsonl").replay()
        recomputed = [
            e["unit"] for e in state.events if e["event"] == "recompute"
        ]
        assert recomputed == [victim.digest]


class TestRetries:
    def test_flaky_unit_retries_and_succeeds(
        self, tmp_path, tiny_manifest, monkeypatch
    ):
        import repro.network.sweep as sweep

        real = sweep.run_point
        tripped = []

        def flaky(topology, routing, pattern, config):
            if config.load == 0.2 and not tripped:
                tripped.append(config.load)
                raise RuntimeError("injected transient failure")
            return real(topology, routing, pattern, config)

        monkeypatch.setattr(sweep, "run_point", flaky)
        report = make_scheduler(tmp_path, tiny_manifest).run()
        assert report.progress.retries == 1
        assert report.progress.failed == 0
        produced = [
            r.to_dict()
            for r in report.ordered_results(tiny_manifest.num_units())
        ]
        assert produced == reference_dicts(tiny_manifest)

    def test_permanent_failure_is_bounded_and_reported(
        self, tmp_path, tiny_manifest, monkeypatch
    ):
        import repro.network.sweep as sweep

        real = sweep.run_point
        attempts = []

        def broken(topology, routing, pattern, config):
            if config.load == 0.3:
                attempts.append(config.load)
                raise RuntimeError("injected permanent failure")
            return real(topology, routing, pattern, config)

        monkeypatch.setattr(sweep, "run_point", broken)
        scheduler = make_scheduler(tmp_path, tiny_manifest, max_attempts=2)
        report = scheduler.run()
        broken_indices = [
            unit.index for unit in scheduler.units if unit.spec.config.load == 0.3
        ]
        assert sorted(report.failed) == broken_indices
        assert all(
            "injected permanent failure" in error
            for error in report.failed.values()
        )
        # Two broken units, two attempts each -- never more.
        assert len(attempts) == 2 * len(broken_indices)
        with pytest.raises(ServiceError, match="failed"):
            report.raise_for_failures()
        state = Journal(scheduler.job_dir / "journal.jsonl").replay()
        assert len(state.failed) == len(broken_indices)
        permanents = [
            e for e in state.events
            if e["event"] == "failed" and e["permanent"]
        ]
        assert len(permanents) == len(broken_indices)

    def test_failed_units_fail_ordered_results(self, tmp_path, tiny_manifest,
                                               monkeypatch):
        import repro.network.sweep as sweep

        def always_broken(topology, routing, pattern, config):
            raise RuntimeError("nope")

        monkeypatch.setattr(sweep, "run_point", always_broken)
        report = make_scheduler(
            tmp_path, tiny_manifest, max_attempts=1
        ).run()
        assert len(report.failed) == tiny_manifest.num_units()
        with pytest.raises(ServiceError):
            report.ordered_results(tiny_manifest.num_units())


class TestPoolExecution:
    def test_pool_matches_serial_reference(self, tmp_path, tiny_manifest):
        report = make_scheduler(tmp_path, tiny_manifest, workers=2).run()
        produced = [
            r.to_dict()
            for r in report.ordered_results(tiny_manifest.num_units())
        ]
        assert produced == reference_dicts(tiny_manifest)
        assert report.progress.simulated == tiny_manifest.num_units()

    def test_killed_worker_is_detected_and_unit_requeued(
        self, tmp_path, tiny_manifest
    ):
        """A worker dying mid-unit (os._exit, same as SIGKILL) costs one
        retry, never the sweep."""
        crash_flag = tmp_path / "crash-now"
        crash_flag.write_text("arm")
        scheduler = make_scheduler(tmp_path, tiny_manifest, workers=2)
        scheduler.crash_flag = str(crash_flag)
        report = scheduler.run()
        assert not crash_flag.exists()
        assert report.progress.failed == 0
        assert report.progress.retries >= 1
        produced = [
            r.to_dict()
            for r in report.ordered_results(tiny_manifest.num_units())
        ]
        assert produced == reference_dicts(tiny_manifest)
        state = Journal(scheduler.job_dir / "journal.jsonl").replay()
        dead = [e for e in state.events if e["event"] == "worker-dead"]
        assert dead
        assert "died" in dead[0]["error"]

    def test_wedged_unit_hits_the_timeout(
        self, tmp_path, tiny_spec, tiny_config, monkeypatch
    ):
        """A unit exceeding the per-unit timeout kills its worker; with
        a single allowed attempt it fails permanently."""
        import dataclasses
        import time as time_module

        import repro.network.sweep as sweep

        from repro.service.manifest import SweepManifest

        def wedge(topology, routing, pattern, config):
            time_module.sleep(60.0)

        # Patched before fork, so workers inherit the wedged function.
        monkeypatch.setattr(sweep, "run_point", wedge)
        manifest = SweepManifest(
            figure="figtest",
            topology=tiny_spec,
            routings=("MIN",),
            patterns=("uniform_random",),
            loads=(0.1, 0.2),
            seeds=(1,),
            config=dataclasses.replace(tiny_config),
        )
        scheduler = make_scheduler(
            tmp_path, manifest, workers=2, unit_timeout=0.5, max_attempts=1,
            heartbeat_interval=0.1,
        )
        report = scheduler.run()
        assert sorted(report.failed) == [0, 1]
        assert all("timeout" in error for error in report.failed.values())
        state = Journal(scheduler.job_dir / "journal.jsonl").replay()
        assert any(e["event"] == "worker-dead" for e in state.events)

    def test_unpicklable_topology_falls_back_and_journals(
        self, tmp_path, tiny_manifest
    ):
        scheduler = make_scheduler(tmp_path, tiny_manifest, workers=2)
        scheduler.topology.unpicklable = lambda: None
        report = scheduler.run()
        assert report.fallback_error is not None
        assert "pickle" in report.fallback_error
        assert report.progress.simulated == tiny_manifest.num_units()
        state = Journal(scheduler.job_dir / "journal.jsonl").replay()
        assert state.last_fallback == report.fallback_error
        # The diagnostic is part of the job's durable status (the
        # ``status`` verb renders it).
        from repro.service.status import job_statuses

        (status,) = job_statuses(tmp_path)
        assert status.last_fallback == report.fallback_error
        assert "fallback" in status.line()


class TestRunManifest:
    def test_persists_manifest_next_to_journal(self, tmp_path, tiny_manifest):
        import json

        report = run_manifest(tmp_path / "svc", tiny_manifest)
        report.raise_for_failures()
        job_dir = tmp_path / "svc" / "jobs" / tiny_manifest.job_id
        saved = json.loads((job_dir / "manifest.json").read_text())
        assert saved == tiny_manifest.to_dict()
        assert (job_dir / "journal.jsonl").exists()

    def test_progress_callback_sees_completion(self, tmp_path, tiny_manifest):
        seen = []
        run_manifest(
            tmp_path / "svc",
            tiny_manifest,
            on_progress=lambda p: seen.append((p.done, p.total)),
        )
        assert seen[0] == (0, tiny_manifest.num_units())
        assert seen[-1] == (tiny_manifest.num_units(), tiny_manifest.num_units())

    def test_progress_line_mentions_the_counts(self, tmp_path, tiny_manifest):
        report = run_manifest(tmp_path / "svc", tiny_manifest)
        line = report.progress.line()
        total = tiny_manifest.num_units()
        assert f"{total}/{total} done" in line
        assert "0 failed" in line


class TestJournalReplay:
    def test_truncated_final_line_is_ignored(self, tmp_path):
        journal = Journal(tmp_path / "journal.jsonl")
        journal.append({"event": "start", "unit": "aaa", "attempt": 1})
        journal.append({"event": "done", "unit": "aaa", "elapsed": 0.5})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "unit": "bbb", "ela')
        state = journal.replay()
        assert set(state.done) == {"aaa"}
        assert not state.complete

    def test_missing_journal_is_empty_state(self, tmp_path):
        state = Journal(tmp_path / "missing.jsonl").replay()
        assert state.events == []
        assert not state.complete
