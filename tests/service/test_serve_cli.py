"""``python -m repro.serve``: submit / status / query / gc verbs."""

import json

import pytest

from repro.serve.__main__ import main


@pytest.fixture()
def manifest_file(tmp_path, tiny_manifest):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps(tiny_manifest.to_dict()), encoding="utf-8")
    return path


@pytest.fixture()
def root(tmp_path):
    return tmp_path / "svc"


def run_cli(*argv):
    return main(list(argv))


class TestSubmit:
    def test_submit_manifest_runs_to_completion(
        self, root, manifest_file, tiny_manifest, capsys
    ):
        code = run_cli(
            "--root", str(root), "submit",
            "--manifest", str(manifest_file), "--no-progress",
        )
        out = capsys.readouterr().out
        assert code == 0
        assert tiny_manifest.job_id in out
        assert "6/6 done" in out

    def test_resubmit_is_pure_cache(
        self, root, manifest_file, tiny_manifest, capsys, monkeypatch
    ):
        assert run_cli(
            "--root", str(root), "submit",
            "--manifest", str(manifest_file), "--no-progress",
        ) == 0
        capsys.readouterr()

        import repro.network.sweep as sweep

        def explode(*args, **kwargs):
            raise AssertionError("resubmit must not simulate")

        monkeypatch.setattr(sweep, "run_point", explode)
        code = run_cli(
            "--root", str(root), "submit",
            "--manifest", str(manifest_file), "--no-progress", "--json",
        )
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        assert summary["simulated"] == 0
        assert summary["cached"] == tiny_manifest.num_units()
        assert summary["failed"] == 0
        (job,) = summary["jobs"]
        assert job["hit_rate"] == 1.0

    def test_loads_override_shrinks_the_grid(
        self, root, manifest_file, capsys
    ):
        code = run_cli(
            "--root", str(root), "submit",
            "--manifest", str(manifest_file),
            "--loads", "0.1", "--no-progress", "--json",
        )
        summary = json.loads(capsys.readouterr().out)
        assert code == 0
        (job,) = summary["jobs"]
        assert job["total"] == 2  # 2 routings x 1 pattern x 1 load x 1 seed

    def test_submit_without_figure_or_manifest_errors(self, root):
        with pytest.raises(SystemExit, match="FIGURE"):
            run_cli("--root", str(root), "submit")

    def test_unknown_figure_errors(self, root):
        with pytest.raises(SystemExit, match="no sweep preset"):
            run_cli("--root", str(root), "submit", "fig99")

    def test_bad_loads_errors(self, root, manifest_file):
        with pytest.raises(SystemExit, match="--loads"):
            run_cli(
                "--root", str(root), "submit",
                "--manifest", str(manifest_file), "--loads", "fast",
            )

    def test_missing_root_errors(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_SERVICE", raising=False)
        with pytest.raises(SystemExit, match="REPRO_SWEEP_SERVICE"):
            run_cli("submit", "fig09")

    def test_root_defaults_to_env(
        self, root, manifest_file, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SWEEP_SERVICE", str(root))
        code = run_cli(
            "submit", "--manifest", str(manifest_file), "--no-progress",
        )
        assert code == 0
        assert (root / "store" / "index.json").exists()


class TestStatusQueryGc:
    @pytest.fixture()
    def submitted(self, root, manifest_file, capsys):
        run_cli(
            "--root", str(root), "submit",
            "--manifest", str(manifest_file), "--no-progress",
        )
        capsys.readouterr()
        return root

    def test_status_lists_the_job(self, submitted, tiny_manifest, capsys):
        assert run_cli("--root", str(submitted), "status") == 0
        out = capsys.readouterr().out
        assert tiny_manifest.job_id in out
        assert "complete" in out
        assert "store: 6 points" in out

    def test_status_json(self, submitted, tiny_manifest, capsys):
        assert run_cli("--root", str(submitted), "status", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        (job,) = payload["jobs"]
        assert job["job"] == tiny_manifest.job_id
        assert job["state"] == "complete"
        assert job["done"] == 6
        assert payload["store"]["points"] == 6
        assert payload["store"]["figures"] == {"figtest": 6}

    def test_status_on_empty_root(self, root, capsys):
        assert run_cli("--root", str(root), "status") == 0
        out = capsys.readouterr().out
        assert "no jobs submitted" in out

    def test_query_filters_and_renders(self, submitted, capsys):
        assert run_cli(
            "--root", str(submitted), "query",
            "--figure", "figtest", "--routing", "MIN", "--max-load", "0.25",
        ) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == 1 + 2  # header + two MIN points at 0.1, 0.2
        assert "VAL" not in out

    def test_query_json_rows(self, submitted, capsys):
        assert run_cli(
            "--root", str(submitted), "query", "--routing", "VAL", "--json",
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["load"] for row in rows] == [0.1, 0.2, 0.3]
        assert all(row["routing"] == "VAL" for row in rows)

    def test_query_no_matches(self, submitted, capsys):
        assert run_cli(
            "--root", str(submitted), "query", "--figure", "nothing",
        ) == 0
        assert "no matching points" in capsys.readouterr().out

    def test_gc_reports_counts(self, submitted, capsys):
        (submitted / "store" / "points" / "junk.tmp").write_text("x")
        assert run_cli("--root", str(submitted), "gc", "--json") == 0
        counts = json.loads(capsys.readouterr().out)
        assert counts["indexed"] == 6
        assert counts["tmp_removed"] == 1


class TestQueryBackendFilter:
    @pytest.fixture()
    def mixed_root(self, root, tiny_manifest):
        """A store populated directly with mixed engine provenance."""
        from repro.network.parallel import _run_spec
        from repro.service.store import ResultStore

        store = ResultStore(root / "store")
        topology = tiny_manifest.topology.build()
        provenances = [
            {"backend": "scalar", "kernel": "none"},
            {"backend": "array", "kernel": "ugal"},
            {
                "backend": "array",
                "kernel": "none",
                "kernel_fallback": "routing has no kernel lowering",
            },
        ]
        for index, unit in enumerate(tiny_manifest.work_units(topology)):
            result = _run_spec(topology, unit.spec)
            result.backend_info = dict(provenances[index % len(provenances)])
            store.put(unit.key, result, figure=tiny_manifest.figure)
        return root

    def test_backend_filter_selects_matching_points(self, mixed_root, capsys):
        assert run_cli(
            "--root", str(mixed_root), "query",
            "--backend", "array", "--json",
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4
        assert all(row["backend"] == "array" for row in rows)
        assert {row["kernel"] for row in rows} == {"ugal", "none"}

    def test_engine_column_rendered_in_text_output(self, mixed_root, capsys):
        assert run_cli("--root", str(mixed_root), "query") == 0
        out = capsys.readouterr().out
        assert "engine" in out.splitlines()[0]
        assert "array/ugal" in out
        assert "scalar" in out

    def test_backend_filter_without_matches(self, mixed_root, capsys):
        assert run_cli(
            "--root", str(mixed_root), "query", "--backend", "quantum",
        ) == 0
        assert "no matching points" in capsys.readouterr().out
