"""Kill the whole service mid-sweep; resume must not recompute.

This is the subsystem's acceptance test: a ``repro.serve submit``
subprocess is SIGKILLed (whole process group, workers included) after
some points have landed, then the same manifest is resumed in-process.
The resume must simulate exactly the missing units -- journaled/stored
points are served from the result store -- and the merged results must
be bit-identical to an uninterrupted serial run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.network.config import SimulationConfig
from repro.network.parallel import _run_spec
from repro.service.journal import Journal
from repro.service.manifest import SweepManifest, TopologySpec
from repro.service.scheduler import SchedulerOptions, run_manifest


@pytest.fixture()
def crash_manifest() -> SweepManifest:
    """16 units of ~0.2 s each: a wide-enough window to kill into."""
    return SweepManifest(
        figure="figcrash",
        topology=TopologySpec(family="dragonfly", p=2, a=2, h=1),
        routings=("MIN", "VAL"),
        patterns=("uniform_random",),
        loads=(0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45),
        seeds=(1,),
        config=SimulationConfig(
            load=0.1,
            warmup_cycles=3000,
            measure_cycles=6000,
            drain_max_cycles=20_000,
        ),
    )


def _point_files(root):
    points_dir = root / "store" / "points"
    if not points_dir.is_dir():
        return []
    return sorted(points_dir.glob("*.json"))


def test_sigkilled_service_resumes_without_recomputation(
    tmp_path, crash_manifest, monkeypatch
):
    root = tmp_path / "svc"
    manifest_path = tmp_path / "manifest.json"
    manifest_path.write_text(
        json.dumps(crash_manifest.to_dict()), encoding="utf-8"
    )
    total = crash_manifest.num_units()

    # --- run 1: real CLI subprocess, SIGKILLed mid-sweep -------------
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--root",
            str(root),
            "submit",
            "--manifest",
            str(manifest_path),
            "--workers",
            "2",
            "--no-progress",
        ],
        env=dict(os.environ, PYTHONPATH="src"),
        cwd=os.getcwd(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # its own process group: workers die too
    )
    try:
        deadline = time.monotonic() + 60.0
        while len(_point_files(root)) < 2:
            if process.poll() is not None:
                pytest.fail("service finished before it could be killed")
            if time.monotonic() > deadline:
                pytest.fail("service produced no points to kill into")
            time.sleep(0.01)
        os.killpg(process.pid, signal.SIGKILL)
    finally:
        if process.poll() is None:
            os.killpg(process.pid, signal.SIGKILL)
        process.wait(timeout=30)

    # Atomic writes mean every surviving point file is complete.
    completed = _point_files(root)
    assert 0 < len(completed) < total, "kill did not land mid-sweep"
    job_dir = root / "jobs" / crash_manifest.job_id
    state = Journal(job_dir / "journal.jsonl").replay()
    assert not state.complete
    # Store-put-before-journal: journaled done implies a stored record.
    stored_digests = {path.stem for path in completed}
    assert set(state.done) <= stored_digests

    # --- run 2: resume in-process, counting every simulation ---------
    import repro.network.sweep as sweep

    calls = []
    real_run_point = sweep.run_point

    def counted(topology, routing, pattern, config):
        calls.append(pattern)
        return real_run_point(topology, routing, pattern, config)

    monkeypatch.setattr(sweep, "run_point", counted)
    report = run_manifest(
        root, crash_manifest, options=SchedulerOptions(workers=1)
    )
    report.raise_for_failures()

    # Zero recomputation: exactly the missing units were simulated.
    assert len(calls) == total - len(completed)
    assert report.progress.cached == len(completed)
    assert report.progress.simulated == total - len(completed)
    assert report.progress.journaled == len(state.done)

    # The journal now narrates a resumed, complete job.
    resumed = Journal(job_dir / "journal.jsonl").replay()
    assert resumed.complete
    job_events = [e for e in resumed.events if e["event"] == "job"]
    assert job_events[-1]["resumed"] is True

    # --- bit-identical to an uninterrupted serial run ----------------
    monkeypatch.setattr(sweep, "run_point", real_run_point)
    topology = crash_manifest.topology.build()
    reference = [
        _run_spec(topology, unit.spec).to_dict()
        for unit in crash_manifest.work_units(topology)
    ]
    produced = [r.to_dict() for r in report.ordered_results(total)]
    assert produced == reference
