"""Shared fixtures for the sweep-service tests: tiny, fast manifests."""

import pytest

from repro.network.config import SimulationConfig
from repro.service.manifest import SweepManifest, TopologySpec


@pytest.fixture()
def tiny_spec() -> TopologySpec:
    return TopologySpec(family="dragonfly", p=1, a=2, h=1)


@pytest.fixture()
def tiny_config() -> SimulationConfig:
    return SimulationConfig(
        load=0.1,
        warmup_cycles=50,
        measure_cycles=100,
        drain_max_cycles=2000,
    )


@pytest.fixture()
def tiny_manifest(tiny_spec, tiny_config) -> SweepManifest:
    """Six fast units: 2 routings x 1 pattern x 3 loads x 1 seed."""
    return SweepManifest(
        figure="figtest",
        topology=tiny_spec,
        routings=("MIN", "VAL"),
        patterns=("uniform_random",),
        loads=(0.1, 0.2, 0.3),
        seeds=(1,),
        config=tiny_config,
    )
