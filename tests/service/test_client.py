"""Service client: the drop-in executor and its env-var activation."""

import pytest

from repro.network.sweep import load_sweep
from repro.service.client import (
    SERVICE_ENV_VAR,
    ServiceExecutor,
    executor_from_env,
    service_root_from_env,
)
from repro.service.scheduler import SchedulerOptions


@pytest.fixture()
def topology(tiny_spec):
    return tiny_spec.build()


def point_dicts(points):
    return [(p.load, p.result.to_dict()) for p in points]


class TestEnvActivation:
    def test_unset_means_no_service(self, monkeypatch):
        monkeypatch.delenv(SERVICE_ENV_VAR, raising=False)
        assert service_root_from_env() is None
        assert executor_from_env() is None

    def test_set_returns_service_executor(self, monkeypatch, tmp_path):
        monkeypatch.setenv(SERVICE_ENV_VAR, str(tmp_path / "svc"))
        executor = executor_from_env()
        assert isinstance(executor, ServiceExecutor)
        assert executor.root == tmp_path / "svc"

    def test_file_root_rejected_naming_the_variable(self, monkeypatch, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        monkeypatch.setenv(SERVICE_ENV_VAR, str(not_a_dir))
        with pytest.raises(ValueError, match=SERVICE_ENV_VAR):
            service_root_from_env()

    def test_experiment_executor_becomes_a_service_client(
        self, monkeypatch, tmp_path
    ):
        from repro.experiments.base import experiment_executor

        monkeypatch.delenv(SERVICE_ENV_VAR, raising=False)
        assert not isinstance(experiment_executor(), ServiceExecutor)
        monkeypatch.setenv(SERVICE_ENV_VAR, str(tmp_path / "svc"))
        assert isinstance(experiment_executor(), ServiceExecutor)


class TestServiceExecutor:
    def test_sweep_matches_plain_executor(
        self, tmp_path, topology, tiny_config
    ):
        executor = ServiceExecutor(tmp_path / "svc")
        points = load_sweep(
            topology, "MIN", "uniform_random", (0.1, 0.2), tiny_config,
            executor=executor,
        )
        reference = load_sweep(
            topology, "MIN", "uniform_random", (0.1, 0.2), tiny_config
        )
        assert point_dicts(points) == point_dicts(reference)
        assert executor.stats["simulated"] == 2
        assert executor.stats["cached"] == 0

    def test_second_run_is_all_cache_hits_zero_simulation(
        self, tmp_path, topology, tiny_config, monkeypatch
    ):
        first = ServiceExecutor(tmp_path / "svc")
        points = load_sweep(
            topology, "MIN", "uniform_random", (0.1, 0.2, 0.3), tiny_config,
            executor=first,
        )

        import repro.network.sweep as sweep

        def explode(*args, **kwargs):
            raise AssertionError("second run must not simulate")

        monkeypatch.setattr(sweep, "run_point", explode)
        second = ServiceExecutor(tmp_path / "svc")
        again = load_sweep(
            topology, "MIN", "uniform_random", (0.1, 0.2, 0.3), tiny_config,
            executor=second,
        )
        assert point_dicts(again) == point_dicts(points)
        assert second.stats == {"cached": 3, "simulated": 0, "fallbacks": 0}
        assert "100.0% hit rate" in second.summary_line()

    def test_results_land_in_the_queryable_store(
        self, tmp_path, topology, tiny_config
    ):
        executor = ServiceExecutor(tmp_path / "svc", figure="figx")
        load_sweep(
            topology, "MIN", "uniform_random", (0.1, 0.2), tiny_config,
            executor=executor,
        )
        rows = executor.query(figure="figx", routing="MIN")
        assert [row.load for row in rows] == [0.1, 0.2]

    def test_run_point_single(self, tmp_path, topology, tiny_config):
        executor = ServiceExecutor(tmp_path / "svc")
        result = executor.run_point(
            topology, "MIN", "uniform_random", tiny_config
        )
        assert result.routing_name == "MIN"
        assert executor.stats["simulated"] == 1

    def test_batches_journal_as_adhoc_jobs(
        self, tmp_path, topology, tiny_config
    ):
        from repro.service.status import job_statuses

        executor = ServiceExecutor(tmp_path / "svc")
        load_sweep(
            topology, "MIN", "uniform_random", (0.1, 0.2), tiny_config,
            executor=executor,
        )
        statuses = job_statuses(tmp_path / "svc")
        assert len(statuses) == 1
        assert statuses[0].state == "complete"
        assert statuses[0].job_id.startswith("adhoc-")

    def test_fallback_error_is_surfaced(self, tmp_path, tiny_config):
        from repro.core.params import DragonflyParams
        from repro.topology.dragonfly import Dragonfly

        unpicklable = Dragonfly(DragonflyParams(p=1, a=2, h=1))
        unpicklable.bad = lambda: None
        executor = ServiceExecutor(
            tmp_path / "svc", options=SchedulerOptions(workers=2)
        )
        load_sweep(
            unpicklable, "MIN", "uniform_random", (0.1, 0.2), tiny_config,
            executor=executor,
        )
        assert executor.stats["fallbacks"] == 1
        assert executor.last_fallback_error is not None
        assert "pickle" in executor.last_fallback_error
        assert "fallback" in executor.summary_line()

    def test_summary_line_names_the_root(self, tmp_path, topology, tiny_config):
        executor = ServiceExecutor(tmp_path / "svc")
        load_sweep(
            topology, "MIN", "uniform_random", (0.1,), tiny_config,
            executor=executor,
        )
        assert str(tmp_path / "svc") in executor.summary_line()
