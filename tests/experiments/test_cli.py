"""Tests for the command-line entry point."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "table2" in out

    def test_run_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "dragonfly" in out
        assert "2*hl + 1*hg" in out

    def test_run_multiple(self, capsys):
        assert main(["fig01", "fig02"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig02" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_mixed_with_valid(self, capsys):
        assert main(["table1", "fig99"]) == 2
        captured = capsys.readouterr()
        assert "Intel Connects" in captured.out
        assert "fig99" in captured.err
