"""Tests for the experiment registry and the analytic experiments."""

import pytest

from repro.experiments import all_experiment_ids, get_experiment
from repro.experiments.base import ExperimentResult


EXPECTED_IDS = {
    # every table/figure of the paper...
    "fig01", "fig02", "fig04", "fig08", "fig09", "fig10", "fig11",
    "fig12", "fig14", "fig16", "fig18", "fig19", "table1", "table2",
    # ... plus extensions beyond it
    "ext_power", "ext_fb_routing", "ext_tapering",
    "ext_group_variants", "ext_cost_sensitivity",
    "ext_four_topologies", "ext_saturation_table", "ext_fault_sweep",
}


class TestRegistry:
    def test_every_paper_figure_registered(self):
        assert set(all_experiment_ids()) == EXPECTED_IDS

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_instances_carry_metadata(self):
        for experiment_id in all_experiment_ids():
            experiment = get_experiment(experiment_id)
            assert experiment.id == experiment_id
            assert experiment.title
            assert experiment.paper_claim


class TestAnalyticExperiments:
    """The fast experiments run end-to-end and reproduce key numbers."""

    def test_fig01_radix_growth(self):
        result = get_experiment("fig01").run()
        rows = {row["N"]: row["required_radix"] for row in result.rows}
        assert rows[1_000_000] > 1000

    def test_fig02_crossover(self):
        result = get_experiment("fig02").run()
        by_length = {row["length_m"]: row for row in result.rows}
        assert by_length[2]["chosen"] == by_length[2]["electrical"]
        assert by_length[20]["chosen"] == by_length[20]["optical"]

    def test_fig04_reaches_256k(self):
        result = get_experiment("fig04").run()
        max_n = max(row["N"] for row in result.rows)
        assert max_n > 256_000

    def test_table1_rows(self):
        result = get_experiment("table1").run()
        assert len(result.rows) == 3

    def test_table2_rows(self):
        result = get_experiment("table2").run()
        assert [row["topology"] for row in result.rows] == [
            "flattened butterfly", "dragonfly",
        ]

    def test_fig18_half_cables(self):
        result = get_experiment("fig18").run()
        fb, df = result.rows
        assert df["global_cables"] / fb["global_cables"] == pytest.approx(
            0.5, abs=0.1
        )

    def test_fig19_claims(self):
        result = get_experiment("fig19").run(quick=True)
        last = result.rows[-1]
        assert last["df_vs_fb"] > 0.15
        assert last["df_vs_clos"] > 0.4
        assert last["df_vs_torus"] > 0.4
        first = result.rows[0]
        assert abs(first["df_vs_fb"]) < 0.02  # identical at small sizes


class TestFormatting:
    def test_format_table_renders_all_columns(self):
        result = get_experiment("table2").run()
        text = result.format_table()
        for column in result.columns:
            assert column in text
        assert result.paper_claim in text

    def test_format_handles_empty_rows(self):
        empty = ExperimentResult(
            experiment_id="x", title="t", paper_claim="c", columns=["a", "b"]
        )
        assert "a" in empty.format_table()


class TestSimulationExperimentSmoke:
    """One cheap simulation experiment end-to-end (the rest are exercised
    by the benchmark harness)."""

    def test_fig09_shape(self):
        result = get_experiment("fig09").run(quick=True)
        rows = {row["routing"]: row for row in result.rows}
        ugal_l, ugal_g = rows["UGAL-L"], rows["UGAL-G"]
        # UGAL-L saturates the minimal channel and starves the
        # same-router non-minimal channels relative to UGAL-G.
        assert ugal_l["minimal_channel"] > ugal_g["minimal_channel"]
        assert (
            ugal_l["same_router_nonminimal"] < ugal_l["other_nonminimal"]
        )
        assert (
            ugal_g["same_router_nonminimal"]
            == pytest.approx(ugal_g["other_nonminimal"], abs=0.1)
        )
