"""Tests for the extension experiments."""

import pytest

from repro.experiments import get_experiment


class TestPowerExperiment:
    def test_runs_and_shapes(self):
        result = get_experiment("ext_power").run(quick=True)
        last = result.rows[-1]
        assert last["df_vs_clos"] > 0.2
        assert last["df_vs_torus"] > 0.5

    def test_power_positive_everywhere(self):
        result = get_experiment("ext_power").run(quick=True)
        for row in result.rows:
            for key in (
                "dragonfly_w", "flattened_butterfly_w",
                "folded_clos_w", "torus_3d_w",
            ):
                assert row[key] > 0


class TestTaperingExperiment:
    def test_cable_count_scales_with_cap(self):
        result = get_experiment("ext_tapering").run(quick=True)
        caps = [row["channels_per_pair"] for row in result.rows]
        cables = [row["global_cables"] for row in result.rows]
        assert caps == sorted(caps, reverse=True)
        assert cables == sorted(cables, reverse=True)

    def test_relative_cost_proportional(self):
        result = get_experiment("ext_tapering").run(quick=True)
        for row in result.rows:
            expected = row["global_cables"] / result.rows[0]["global_cables"]
            assert row["relative_global_cost"] == pytest.approx(expected)

    def test_bisection_shrinks_with_taper(self):
        result = get_experiment("ext_tapering").run(quick=True)
        bisections = [row["bisection_channels"] for row in result.rows]
        assert bisections == sorted(bisections, reverse=True)


class TestFbRoutingExperiment:
    """Slower (simulation); one end-to-end check."""

    def test_fb_routing_story(self):
        result = get_experiment("ext_fb_routing").run(quick=True)
        adversarial = [
            row for row in result.rows if row["pattern"] == "fb_adversarial"
        ]
        # MIN saturates past 1/c = 0.25, UGAL-L survives with low latency.
        import math

        beyond = [row for row in adversarial if row["load"] >= 0.35]
        assert beyond
        for row in beyond:
            assert math.isinf(row["FB-MIN"]) or row["FB-MIN"] > 100
            assert not math.isinf(row["FB-UGAL-L"])
            assert row["FB-UGAL-L"] < 30
