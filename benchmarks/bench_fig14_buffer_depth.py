"""Figure 14: UGAL-L intermediate latency vs input buffer depth."""

import math


def test_fig14_buffer_depth(run_experiment):
    result = run_experiment("fig14")
    # At an intermediate load, latency increases monotonically-ish with
    # buffer depth (stiffer backpressure with shallower buffers).
    at_load = {}
    for row in result.rows:
        if row["load"] == 0.3 and not math.isinf(row["latency"]):
            at_load[row["buffer_depth"]] = row["latency"]
    depths = sorted(at_load)
    assert len(depths) >= 3
    assert at_load[depths[0]] < at_load[depths[-1]]
    assert at_load[depths[-1]] > 1.5 * at_load[depths[0]]
