"""Figure 10: UGAL-L_VC and UGAL-L_VCH vs UGAL-L / UGAL-G."""

import math


def test_fig10_vc_discrimination(run_experiment):
    result = run_experiment("fig10")
    ur = [row for row in result.rows if row["pattern"] == "uniform_random"]
    wc = [row for row in result.rows if row["pattern"] == "worst_case"]

    # Figure 10(b): on WC both VC variants sustain the load range where
    # UGAL-G does.
    top_wc = max(row["load"] for row in wc)
    for row in wc:
        if row["load"] == top_wc and not math.isinf(row["UGAL-G"]):
            assert not math.isinf(row["UGAL-L_VC"])
            assert not math.isinf(row["UGAL-L_VCH"])

    # Figure 10(a): on UR near saturation UGAL-L_VC loses throughput
    # (accepted load visibly below offered) while UGAL-L_VCH keeps it.
    near_saturation = [row for row in ur if row["load"] >= 0.85]
    assert near_saturation
    for row in near_saturation:
        vc_accepted = row["UGAL-L_VC:accepted"]
        vch_accepted = row["UGAL-L_VCH:accepted"]
        assert vc_accepted < row["load"] - 0.05
        assert vch_accepted > vc_accepted + 0.03
