"""Figure 9: global channel utilisation under WC traffic at load 0.2."""


def test_fig09_channel_utilization(run_experiment):
    result = run_experiment("fig09")
    rows = {row["routing"]: row for row in result.rows}
    ugal_l, ugal_g = rows["UGAL-L"], rows["UGAL-G"]
    # UGAL-L pins the minimal channel at saturation...
    assert ugal_l["minimal_channel"] > 0.9
    # ... and starves the non-minimal channels that share its router.
    assert ugal_l["same_router_nonminimal"] < 0.75 * ugal_l["other_nonminimal"]
    # UGAL-G prefers the minimal channel but balances the rest.
    assert ugal_g["minimal_channel"] > ugal_g["other_nonminimal"]
    assert abs(
        ugal_g["same_router_nonminimal"] - ugal_g["other_nonminimal"]
    ) < 0.1
