"""Figure 2: electrical vs optical cable cost and the ~10 m crossover."""


def test_fig02_cable_cost(run_experiment):
    result = run_experiment("fig02")
    by_length = {row["length_m"]: row for row in result.rows}
    assert by_length[0]["optical"] > by_length[0]["electrical"]
    assert by_length[100]["optical"] < by_length[100]["electrical"]
    assert by_length[5]["chosen"] == by_length[5]["electrical"]
    assert by_length[40]["chosen"] == by_length[40]["optical"]
