"""Extension: the Figure 19 ranking must survive calibration changes."""


def test_ext_cost_sensitivity(run_experiment):
    result = run_experiment("ext_cost_sensitivity")
    for row in result.rows:
        # Under every scenario the dragonfly stays ahead of the FB at
        # 64K and far ahead of Clos/torus at 16K.
        assert row["df_vs_fb_64k"] > 0.15, row["scenario"]
        assert row["df_vs_clos_16k"] > 0.4, row["scenario"]
        assert row["df_vs_torus_16k"] > 0.4, row["scenario"]
