"""Figure 19: $/node vs network size for the four topologies."""


def test_fig19_cost_comparison(run_experiment):
    result = run_experiment("fig19", quick=False)
    first, last = result.rows[0], result.rows[-1]
    # Identical to the flattened butterfly when fully connected (<~1K).
    assert abs(first["df_vs_fb"]) < 0.02
    # Cheaper than the flattened butterfly at scale (paper: ~20%).
    assert last["df_vs_fb"] > 0.15
    # Over half the folded-Clos cost saved at >= 4K (paper: 52%).
    for row in result.rows:
        if row["N"] >= 4096:
            assert 0.40 < row["df_vs_clos"] < 0.65
    # Large savings vs the 3-D torus (paper: ~47-62%).
    for row in result.rows:
        if row["N"] >= 4096:
            assert row["df_vs_torus"] > 0.40
