"""Extension: network power comparison (the paper's closing Section 5 claim)."""


def test_ext_power_comparison(run_experiment):
    result = run_experiment("ext_power")
    last = result.rows[-1]
    assert last["dragonfly_w"] < last["folded_clos_w"]
    assert last["dragonfly_w"] < last["torus_3d_w"]
    assert last["df_vs_torus"] > 0.5
