#!/usr/bin/env python
"""Simulator-core throughput benchmark (``BENCH_simulator.json``).

Measures the cycle rate (simulated cycles per wall-clock second) of the
active-set simulator core on the configurations the acceptance criteria
name:

* ``fig9_point_load20`` -- the Figure 9 single-point configuration: the
  72-terminal paper network (p=2, a=4, h=2), worst-case traffic,
  UGAL-L, 20% offered load.
* ``fig9_point_saturation`` -- the same network and pattern at 45%
  load, past the WC/UGAL-L saturation point, so the switch loop runs
  with full buffers.
* ``uniform_low_load`` -- uniform random at 20% load (the benign
  pattern; exercises the decide fast path rather than backpressure).
* ``multi_flit`` -- uniform random at 20% load with 4-flit packets
  (virtual cut-through allocation; the generic switch loop).
* ``request_reply`` -- uniform random at 20% load with the
  request-reply protocol (two VC classes, reply injection from the
  ejection path).

A second section, ``backend_ab``, times the scalar engine against the
batched numpy array backend (``repro.network.array_backend``) on the
same source tree -- interleaved scalar/array samples, best-of-N each,
``array_speedup = min(scalar)/min(array)``:

* ``paper1k_fig9_point`` -- the paper's 1056-node maximum network
  (p=h=4, a=8), worst-case traffic, UGAL-L at 20% load: the Figure 9
  single point at the scale the array backend was built for.
* ``paper1k_uniform_low_load`` -- the same network, benign traffic at
  10% load (the injection scan dominates).
* ``scale16k_uniform_trickle`` -- a 16512-terminal dragonfly (p=8,
  a=16, h=8) at 2% load, where the scalar engine's O(terminals)
  injection scan dwarfs the traffic and the array backend's batched
  Bernoulli draw shows its structural advantage.

Methodology: every timing sample is a fresh subprocess (no warm caches
shared between engine versions), each case is run ``--reps`` times and
the *minimum* wall time is reported -- on a busy machine the minimum is
the best estimator of the true cost, and anything else measures the
noise.  With ``--baseline REV`` the script additionally checks out
``REV`` into a temporary git worktree and interleaves baseline/current
samples (A/B/A/B), so slow drifts in background load hit both engines
equally; the recorded ``speedup`` is min(baseline)/min(current).

Usage::

    python benchmarks/bench_simulator.py                  # current engine only
    python benchmarks/bench_simulator.py --baseline REV   # + speedup vs REV
    python benchmarks/bench_simulator.py --smoke          # CI: tiny cycle
                                                          # counts, 1 rep
    python benchmarks/bench_simulator.py --profile        # + cProfile top-20
                                                          # per case, to file
    python benchmarks/bench_simulator.py --perf-gate      # CI: 1056-node A/B
                                                          # speedup-floor gate

The result is written to ``BENCH_simulator.json`` (override with
``--output``); the report header records the interpreter, platform and
numpy/BLAS identity so two artifacts are never compared across silently
different environments.  The committed copy was generated with
``--baseline <seed>`` against the pre-optimisation engine; CI
regenerates a ``--smoke`` copy on every push as an artifact to prove
the benchmark itself still runs, and ``--perf-gate`` fails the build if
the array backend's decide-kernel advantage at the 1056-node Figure 9
point drops below the floor.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Child process: build one configuration, time sim.run() once, print the
# wall time.  Receives the case config as JSON on argv so the same
# source runs against any engine version via PYTHONPATH.
_CHILD_SRC = """
import json, sys, time
from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly

try:
    from repro.network.backend import make_simulator
except ImportError:  # pre-backend engine versions (--baseline REV)
    from repro.network.simulator import Simulator

    def make_simulator(topology, routing, pattern, config, backend=None):
        return Simulator(topology, routing, pattern, config)

spec = json.loads(sys.argv[1])
topology = Dragonfly(DragonflyParams(**spec["params"]))
config = SimulationConfig(**spec["config"])
pattern = make_pattern(spec["pattern"], topology, seed=config.seed + 17)
simulator = make_simulator(
    topology, make_routing(spec["routing"]), pattern, config,
    backend=spec.get("backend"),
)
start = time.perf_counter()
simulator.run()
print(time.perf_counter() - start)
"""

# Profiling child: same construction, but the run executes under
# cProfile and the child prints the top-20 functions by cumulative time
# instead of a wall-clock number.
_PROFILE_CHILD_SRC = _CHILD_SRC.replace(
    """start = time.perf_counter()
simulator.run()
print(time.perf_counter() - start)""",
    """import cProfile, io, pstats
profiler = cProfile.Profile()
profiler.enable()
simulator.run()
profiler.disable()
buffer = io.StringIO()
pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(20)
print(buffer.getvalue())""",
)
assert _PROFILE_CHILD_SRC != _CHILD_SRC, "profile child template drifted"

# The Figure 5 / Figure 9 example network: p=h=2, a=4, N=72 terminals.
PAPER_72 = {"p": 2, "a": 4, "h": 2}

# The paper's maximum single-stage dragonfly: g=33, 264 routers,
# N=1056 terminals.
PAPER_1K = {"p": 4, "a": 8, "h": 4}

# Beyond the paper: p=8, a=16, h=8 -> N=16512 terminals, where the
# scalar engine's per-terminal injection scan dominates the cycle cost.
SCALE_16K = {"p": 8, "a": 16, "h": 8}

ACCEPTANCE = {
    # The active-set rewrite's bar: >= 2x cycle rate at the Figure 9
    # single point (20% load) and >= 1.2x at saturation, versus the
    # seed engine.
    "fig9_point_load20_min_speedup": 2.0,
    "fig9_point_saturation_min_speedup": 1.2,
    # The array backend's bar: the 1056-node Figure 9 point must finish
    # well inside the 5-minute CI smoke budget on the array backend.
    "paper1k_fig9_point_max_array_seconds": 300.0,
    # The decide kernel's bar: scalar/array interleaved A/B at the
    # 1056-node Figure 9 point.  The recorded full-mode number is the
    # >= 1.8x claim; the CI --perf-gate floor is deliberately lower
    # (shared runners are noisy) but still far above the pre-kernel
    # parity (~1.0x), so a disabled or regressed kernel fails fast.
    "paper1k_fig9_point_min_array_speedup": 1.8,
    "perf_gate_min_array_speedup": 1.3,
}


def environment_info() -> dict:
    """Interpreter / platform / numpy-BLAS identity for the report header."""
    import platform

    info = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is baked in
        info["numpy"] = None
        return info
    info["numpy"] = numpy.__version__
    try:
        # numpy >= 1.25; older versions only have the printing variant.
        config = numpy.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        info["blas"] = {
            "name": blas.get("name", "unknown"),
            "version": blas.get("version", "unknown"),
        }
    except TypeError:
        info["blas"] = "unknown"
    return info


def make_cases(smoke: bool) -> dict:
    warm, meas = (40, 80) if smoke else (200, 400)
    base = {
        "warmup_cycles": warm,
        "measure_cycles": meas,
        "drain_max_cycles": 0,
        "seed": 7,
    }
    return {
        "fig9_point_load20": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "worst_case",
            "config": dict(base, load=0.2),
        },
        "fig9_point_saturation": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "worst_case",
            "config": dict(base, load=0.45),
        },
        "uniform_low_load": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.2),
        },
        "multi_flit": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.2, packet_size=4),
        },
        "request_reply": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.2, request_reply=True, num_vcs=6),
        },
    }


def make_backend_cases(smoke: bool) -> dict:
    """Scalar-vs-array A/B configurations (run on the current source)."""
    warm, meas = (20, 40) if smoke else (200, 400)
    base = {
        "warmup_cycles": warm,
        "measure_cycles": meas,
        "drain_max_cycles": 0,
        "seed": 7,
    }
    cases = {
        "paper1k_fig9_point": {
            "params": PAPER_1K,
            "routing": "UGAL-L",
            "pattern": "worst_case",
            "config": dict(base, load=0.2),
        },
        "paper1k_uniform_low_load": {
            "params": PAPER_1K,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.1),
        },
        "scale16k_uniform_trickle": {
            "params": SCALE_16K,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(
                base,
                load=0.02,
                warmup_cycles=warm // 2 or 10,
                measure_cycles=meas // 2 or 20,
            ),
        },
    }
    return cases


def run_backend_ab(cases, current_src, reps):
    results = {}
    for name, spec in cases.items():
        cycles = spec["config"]["warmup_cycles"] + spec["config"]["measure_cycles"]
        best = {"scalar": None, "array": None}
        # Interleave scalar/array samples (same reasoning as --baseline).
        for _ in range(reps):
            for backend in ("scalar", "array"):
                sample = time_once(current_src, dict(spec, backend=backend))
                if best[backend] is None or sample < best[backend]:
                    best[backend] = sample
        entry = {
            "params": spec["params"],
            "routing": spec["routing"],
            "pattern": spec["pattern"],
            "load": spec["config"]["load"],
            "simulated_cycles": cycles,
            "scalar_wall_time_s": round(best["scalar"], 6),
            "scalar_cycles_per_sec": round(cycles / best["scalar"], 1),
            "array_wall_time_s": round(best["array"], 6),
            "array_cycles_per_sec": round(cycles / best["array"], 1),
            "array_speedup": round(best["scalar"] / best["array"], 3),
        }
        results[name] = entry
        print(
            f"{name:24s} scalar {entry['scalar_cycles_per_sec']:>9.0f} c/s"
            f"  array {entry['array_cycles_per_sec']:>9.0f} c/s"
            f"  ({entry['array_speedup']:.2f}x)",
            flush=True,
        )
    return results


def time_once(pythonpath: pathlib.Path, spec: dict) -> float:
    # PYTHONPATH (prepended to sys.path) picks the engine version; it
    # shadows any pip-installed repro in the child.
    env = dict(os.environ, PYTHONPATH=str(pythonpath))
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SRC, json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
    )
    if out.returncode != 0:
        raise RuntimeError(f"benchmark child failed:\n{out.stderr}")
    return float(out.stdout.strip())


def profile_once(pythonpath: pathlib.Path, spec: dict) -> str:
    """One profiled run; returns the child's top-20 cumulative report."""
    env = dict(os.environ, PYTHONPATH=str(pythonpath))
    out = subprocess.run(
        [sys.executable, "-c", _PROFILE_CHILD_SRC, json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
    )
    if out.returncode != 0:
        raise RuntimeError(f"profile child failed:\n{out.stderr}")
    return out.stdout


def run_profiles(cases, backend_cases, current_src, output: pathlib.Path):
    """cProfile every case once, top-20 cumulative each, to one artifact."""
    sections = []
    for name, spec in cases.items():
        sections.append((name, profile_once(current_src, spec)))
        print(f"profiled {name}", flush=True)
    for name, spec in backend_cases.items():
        for backend in ("scalar", "array"):
            sections.append(
                (f"{name}[{backend}]", profile_once(current_src, dict(spec, backend=backend)))
            )
            print(f"profiled {name}[{backend}]", flush=True)
    text = "\n".join(
        f"{'=' * 72}\n{name}\n{'=' * 72}\n{body}" for name, body in sections
    )
    output.write_text(text)
    print(f"wrote {output}", flush=True)


def run_perf_gate(current_src, output: pathlib.Path, reps: int) -> int:
    """CI gate: 1056-node Figure 9 point, interleaved scalar/array A/B.

    Passes when the array point stays inside the wall-clock budget AND
    the decide-kernel speedup clears the gate floor.  Cycle counts sit
    between smoke and full: long enough that per-cycle advantage (not
    process startup) dominates, short enough for every push.
    """
    spec = {
        "params": PAPER_1K,
        "routing": "UGAL-L",
        "pattern": "worst_case",
        "config": {
            "warmup_cycles": 100,
            "measure_cycles": 200,
            "drain_max_cycles": 0,
            "seed": 7,
            "load": 0.2,
        },
    }
    results = run_backend_ab({"paper1k_fig9_point": spec}, current_src, reps)
    entry = results["paper1k_fig9_point"]
    report = {
        "schema": "repro.bench_simulator/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "generated_by": "benchmarks/bench_simulator.py --perf-gate",
        "mode": "perf-gate",
        "reps_per_case": reps,
        "environment": environment_info(),
        "backend_ab": results,
        "acceptance": ACCEPTANCE,
    }
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {output}", flush=True)

    ok = True
    budget = ACCEPTANCE["paper1k_fig9_point_max_array_seconds"]
    status = "ok" if entry["array_wall_time_s"] <= budget else "OVER BUDGET"
    print(
        f"perf-gate budget: array {entry['array_wall_time_s']:.2f}s "
        f"(<= {budget:.0f}s): {status}"
    )
    ok = ok and entry["array_wall_time_s"] <= budget
    floor = ACCEPTANCE["perf_gate_min_array_speedup"]
    status = "ok" if entry["array_speedup"] >= floor else "BELOW FLOOR"
    print(
        f"perf-gate speedup: {entry['array_speedup']:.2f}x "
        f"(>= {floor}x): {status}"
    )
    ok = ok and entry["array_speedup"] >= floor
    return 0 if ok else 1


def run_cases(cases, current_src, baseline_src, reps):
    results = {}
    for name, spec in cases.items():
        cycles = spec["config"]["warmup_cycles"] + spec["config"]["measure_cycles"]
        best = None
        base_best = None
        # Interleave baseline/current samples so background-load drift
        # affects both engines equally.
        for _ in range(reps):
            if baseline_src is not None:
                sample = time_once(baseline_src, spec)
                base_best = sample if base_best is None else min(base_best, sample)
            sample = time_once(current_src, spec)
            best = sample if best is None else min(best, sample)
        entry = {
            "params": spec["params"],
            "routing": spec["routing"],
            "pattern": spec["pattern"],
            "load": spec["config"]["load"],
            "simulated_cycles": cycles,
            "wall_time_s": round(best, 6),
            "cycles_per_sec": round(cycles / best, 1),
        }
        if base_best is not None:
            entry["baseline_wall_time_s"] = round(base_best, 6)
            entry["baseline_cycles_per_sec"] = round(cycles / base_best, 1)
            entry["speedup"] = round(base_best / best, 3)
        results[name] = entry
        line = f"{name:24s} {entry['cycles_per_sec']:>10.0f} cycles/s"
        if "speedup" in entry:
            line += f"  ({entry['speedup']:.2f}x vs baseline)"
        print(line, flush=True)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cycle counts and a single rep; proves the benchmark "
        "runs (CI), does not produce meaningful timings",
    )
    parser.add_argument(
        "--baseline",
        metavar="REV",
        help="git revision to A/B against (checked out into a "
        "temporary worktree); adds speedup numbers to the output",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="timing repetitions per case, best-of-N (default: 5, or 1 "
        "with --smoke)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_simulator.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="additionally cProfile every case once (both backends for "
        "the A/B cases) and write the top-20 cumulative reports to "
        "--profile-output",
    )
    parser.add_argument(
        "--profile-output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_simulator_profile.txt",
        help="where --profile writes its per-case reports",
    )
    parser.add_argument(
        "--perf-gate",
        action="store_true",
        help="CI gate mode: run only the 1056-node Figure 9 scalar/array "
        "A/B point; exit non-zero if the array wall time exceeds the "
        "budget or the speedup falls below the gate floor",
    )
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.smoke else 5)

    cases = make_cases(smoke=args.smoke)
    current_src = REPO_ROOT / "src"

    if args.perf_gate:
        return run_perf_gate(current_src, args.output, max(reps, 3))

    if args.profile:
        run_profiles(
            cases, make_backend_cases(args.smoke), current_src,
            args.profile_output,
        )

    worktree = None
    baseline_src = None
    try:
        if args.baseline:
            worktree = tempfile.mkdtemp(prefix="bench-baseline-")
            subprocess.run(
                ["git", "worktree", "add", "--detach", worktree, args.baseline],
                cwd=REPO_ROOT,
                check=True,
                capture_output=True,
            )
            baseline_src = pathlib.Path(worktree) / "src"
            print(f"baseline: {args.baseline} in {worktree}", flush=True)
        started = time.strftime("%Y-%m-%dT%H:%M:%S")
        results = run_cases(cases, current_src, baseline_src, reps)
        backend_results = run_backend_ab(make_backend_cases(args.smoke), current_src, reps)
    finally:
        if worktree is not None:
            subprocess.run(
                ["git", "worktree", "remove", "--force", worktree],
                cwd=REPO_ROOT,
                capture_output=True,
            )

    report = {
        "schema": "repro.bench_simulator/v1",
        "generated": started,
        "generated_by": "benchmarks/bench_simulator.py",
        "mode": "smoke" if args.smoke else "full",
        "reps_per_case": reps,
        "baseline_rev": args.baseline,
        "python": sys.version.split()[0],
        "environment": environment_info(),
        "cases": results,
        "backend_ab": backend_results,
        "acceptance": ACCEPTANCE,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}", flush=True)

    ok = True
    # The 1056-node array smoke budget holds in every mode (smoke runs
    # fewer cycles, so a smoke pass is a necessary, full a sufficient
    # check).
    array_wall = backend_results["paper1k_fig9_point"]["array_wall_time_s"]
    budget = ACCEPTANCE["paper1k_fig9_point_max_array_seconds"]
    status = "ok" if array_wall <= budget else "OVER BUDGET"
    print(
        f"acceptance paper1k_fig9_point: array {array_wall:.2f}s "
        f"(<= {budget:.0f}s): {status}"
    )
    ok = ok and array_wall <= budget

    if not args.smoke:
        speedup = backend_results["paper1k_fig9_point"]["array_speedup"]
        bar = ACCEPTANCE["paper1k_fig9_point_min_array_speedup"]
        status = "ok" if speedup >= bar else "BELOW BAR"
        print(
            f"acceptance paper1k_fig9_point speedup: {speedup:.2f}x "
            f"(>= {bar}x): {status}"
        )
        ok = ok and speedup >= bar

    if args.baseline and not args.smoke:
        for case, key in (
            ("fig9_point_load20", "fig9_point_load20_min_speedup"),
            ("fig9_point_saturation", "fig9_point_saturation_min_speedup"),
        ):
            speedup = results[case]["speedup"]
            bar = ACCEPTANCE[key]
            status = "ok" if speedup >= bar else "BELOW BAR"
            print(f"acceptance {case}: {speedup:.2f}x (>= {bar}x): {status}")
            ok = ok and speedup >= bar
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
