#!/usr/bin/env python
"""Simulator-core throughput benchmark (``BENCH_simulator.json``).

Measures the cycle rate (simulated cycles per wall-clock second) of the
active-set simulator core on the configurations the acceptance criteria
name:

* ``fig9_point_load20`` -- the Figure 9 single-point configuration: the
  72-terminal paper network (p=2, a=4, h=2), worst-case traffic,
  UGAL-L, 20% offered load.
* ``fig9_point_saturation`` -- the same network and pattern at 45%
  load, past the WC/UGAL-L saturation point, so the switch loop runs
  with full buffers.
* ``uniform_low_load`` -- uniform random at 20% load (the benign
  pattern; exercises the decide fast path rather than backpressure).
* ``multi_flit`` -- uniform random at 20% load with 4-flit packets
  (virtual cut-through allocation; the generic switch loop).
* ``request_reply`` -- uniform random at 20% load with the
  request-reply protocol (two VC classes, reply injection from the
  ejection path).

A second section, ``backend_ab``, times the scalar engine against the
batched numpy array backend (``repro.network.array_backend``) on the
same source tree -- interleaved scalar/array samples, best-of-N each,
``array_speedup = min(scalar)/min(array)``:

* ``paper1k_fig9_point`` -- the paper's 1056-node maximum network
  (p=h=4, a=8), worst-case traffic, UGAL-L at 20% load: the Figure 9
  single point at the scale the array backend was built for.
* ``paper1k_uniform_low_load`` -- the same network, benign traffic at
  10% load (the injection scan dominates).
* ``scale16k_uniform_trickle`` -- a 16512-terminal dragonfly (p=8,
  a=16, h=8) at 2% load, where the scalar engine's O(terminals)
  injection scan dwarfs the traffic and the array backend's batched
  Bernoulli draw shows its structural advantage.

Methodology: every timing sample is a fresh subprocess (no warm caches
shared between engine versions), each case is run ``--reps`` times and
the *minimum* wall time is reported -- on a busy machine the minimum is
the best estimator of the true cost, and anything else measures the
noise.  With ``--baseline REV`` the script additionally checks out
``REV`` into a temporary git worktree and interleaves baseline/current
samples (A/B/A/B), so slow drifts in background load hit both engines
equally; the recorded ``speedup`` is min(baseline)/min(current).

Usage::

    python benchmarks/bench_simulator.py                  # current engine only
    python benchmarks/bench_simulator.py --baseline REV   # + speedup vs REV
    python benchmarks/bench_simulator.py --smoke          # CI: tiny cycle
                                                          # counts, 1 rep

The result is written to ``BENCH_simulator.json`` (override with
``--output``).  The committed copy was generated with
``--baseline <seed>`` against the pre-optimisation engine; CI
regenerates a ``--smoke`` copy on every push as an artifact to prove
the benchmark itself still runs.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Child process: build one configuration, time sim.run() once, print the
# wall time.  Receives the case config as JSON on argv so the same
# source runs against any engine version via PYTHONPATH.
_CHILD_SRC = """
import json, sys, time
from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly

try:
    from repro.network.backend import make_simulator
except ImportError:  # pre-backend engine versions (--baseline REV)
    from repro.network.simulator import Simulator

    def make_simulator(topology, routing, pattern, config, backend=None):
        return Simulator(topology, routing, pattern, config)

spec = json.loads(sys.argv[1])
topology = Dragonfly(DragonflyParams(**spec["params"]))
config = SimulationConfig(**spec["config"])
pattern = make_pattern(spec["pattern"], topology, seed=config.seed + 17)
simulator = make_simulator(
    topology, make_routing(spec["routing"]), pattern, config,
    backend=spec.get("backend"),
)
start = time.perf_counter()
simulator.run()
print(time.perf_counter() - start)
"""

# The Figure 5 / Figure 9 example network: p=h=2, a=4, N=72 terminals.
PAPER_72 = {"p": 2, "a": 4, "h": 2}

# The paper's maximum single-stage dragonfly: g=33, 264 routers,
# N=1056 terminals.
PAPER_1K = {"p": 4, "a": 8, "h": 4}

# Beyond the paper: p=8, a=16, h=8 -> N=16512 terminals, where the
# scalar engine's per-terminal injection scan dominates the cycle cost.
SCALE_16K = {"p": 8, "a": 16, "h": 8}

ACCEPTANCE = {
    # The active-set rewrite's bar: >= 2x cycle rate at the Figure 9
    # single point (20% load) and >= 1.2x at saturation, versus the
    # seed engine.
    "fig9_point_load20_min_speedup": 2.0,
    "fig9_point_saturation_min_speedup": 1.2,
    # The array backend's bar: the 1056-node Figure 9 point must finish
    # well inside the 5-minute CI smoke budget on the array backend.
    "paper1k_fig9_point_max_array_seconds": 300.0,
}


def make_cases(smoke: bool) -> dict:
    warm, meas = (40, 80) if smoke else (200, 400)
    base = {
        "warmup_cycles": warm,
        "measure_cycles": meas,
        "drain_max_cycles": 0,
        "seed": 7,
    }
    return {
        "fig9_point_load20": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "worst_case",
            "config": dict(base, load=0.2),
        },
        "fig9_point_saturation": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "worst_case",
            "config": dict(base, load=0.45),
        },
        "uniform_low_load": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.2),
        },
        "multi_flit": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.2, packet_size=4),
        },
        "request_reply": {
            "params": PAPER_72,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.2, request_reply=True, num_vcs=6),
        },
    }


def make_backend_cases(smoke: bool) -> dict:
    """Scalar-vs-array A/B configurations (run on the current source)."""
    warm, meas = (20, 40) if smoke else (200, 400)
    base = {
        "warmup_cycles": warm,
        "measure_cycles": meas,
        "drain_max_cycles": 0,
        "seed": 7,
    }
    cases = {
        "paper1k_fig9_point": {
            "params": PAPER_1K,
            "routing": "UGAL-L",
            "pattern": "worst_case",
            "config": dict(base, load=0.2),
        },
        "paper1k_uniform_low_load": {
            "params": PAPER_1K,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(base, load=0.1),
        },
        "scale16k_uniform_trickle": {
            "params": SCALE_16K,
            "routing": "UGAL-L",
            "pattern": "uniform_random",
            "config": dict(
                base,
                load=0.02,
                warmup_cycles=warm // 2 or 10,
                measure_cycles=meas // 2 or 20,
            ),
        },
    }
    return cases


def run_backend_ab(cases, current_src, reps):
    results = {}
    for name, spec in cases.items():
        cycles = spec["config"]["warmup_cycles"] + spec["config"]["measure_cycles"]
        best = {"scalar": None, "array": None}
        # Interleave scalar/array samples (same reasoning as --baseline).
        for _ in range(reps):
            for backend in ("scalar", "array"):
                sample = time_once(current_src, dict(spec, backend=backend))
                if best[backend] is None or sample < best[backend]:
                    best[backend] = sample
        entry = {
            "params": spec["params"],
            "routing": spec["routing"],
            "pattern": spec["pattern"],
            "load": spec["config"]["load"],
            "simulated_cycles": cycles,
            "scalar_wall_time_s": round(best["scalar"], 6),
            "scalar_cycles_per_sec": round(cycles / best["scalar"], 1),
            "array_wall_time_s": round(best["array"], 6),
            "array_cycles_per_sec": round(cycles / best["array"], 1),
            "array_speedup": round(best["scalar"] / best["array"], 3),
        }
        results[name] = entry
        print(
            f"{name:24s} scalar {entry['scalar_cycles_per_sec']:>9.0f} c/s"
            f"  array {entry['array_cycles_per_sec']:>9.0f} c/s"
            f"  ({entry['array_speedup']:.2f}x)",
            flush=True,
        )
    return results


def time_once(pythonpath: pathlib.Path, spec: dict) -> float:
    # PYTHONPATH (prepended to sys.path) picks the engine version; it
    # shadows any pip-installed repro in the child.
    env = dict(os.environ, PYTHONPATH=str(pythonpath))
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SRC, json.dumps(spec)],
        capture_output=True,
        text=True,
        env=env,
    )
    if out.returncode != 0:
        raise RuntimeError(f"benchmark child failed:\n{out.stderr}")
    return float(out.stdout.strip())


def run_cases(cases, current_src, baseline_src, reps):
    results = {}
    for name, spec in cases.items():
        cycles = spec["config"]["warmup_cycles"] + spec["config"]["measure_cycles"]
        best = None
        base_best = None
        # Interleave baseline/current samples so background-load drift
        # affects both engines equally.
        for _ in range(reps):
            if baseline_src is not None:
                sample = time_once(baseline_src, spec)
                base_best = sample if base_best is None else min(base_best, sample)
            sample = time_once(current_src, spec)
            best = sample if best is None else min(best, sample)
        entry = {
            "params": spec["params"],
            "routing": spec["routing"],
            "pattern": spec["pattern"],
            "load": spec["config"]["load"],
            "simulated_cycles": cycles,
            "wall_time_s": round(best, 6),
            "cycles_per_sec": round(cycles / best, 1),
        }
        if base_best is not None:
            entry["baseline_wall_time_s"] = round(base_best, 6)
            entry["baseline_cycles_per_sec"] = round(cycles / base_best, 1)
            entry["speedup"] = round(base_best / best, 3)
        results[name] = entry
        line = f"{name:24s} {entry['cycles_per_sec']:>10.0f} cycles/s"
        if "speedup" in entry:
            line += f"  ({entry['speedup']:.2f}x vs baseline)"
        print(line, flush=True)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cycle counts and a single rep; proves the benchmark "
        "runs (CI), does not produce meaningful timings",
    )
    parser.add_argument(
        "--baseline",
        metavar="REV",
        help="git revision to A/B against (checked out into a "
        "temporary worktree); adds speedup numbers to the output",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="timing repetitions per case, best-of-N (default: 5, or 1 "
        "with --smoke)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_simulator.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (1 if args.smoke else 5)

    cases = make_cases(smoke=args.smoke)
    current_src = REPO_ROOT / "src"

    worktree = None
    baseline_src = None
    try:
        if args.baseline:
            worktree = tempfile.mkdtemp(prefix="bench-baseline-")
            subprocess.run(
                ["git", "worktree", "add", "--detach", worktree, args.baseline],
                cwd=REPO_ROOT,
                check=True,
                capture_output=True,
            )
            baseline_src = pathlib.Path(worktree) / "src"
            print(f"baseline: {args.baseline} in {worktree}", flush=True)
        started = time.strftime("%Y-%m-%dT%H:%M:%S")
        results = run_cases(cases, current_src, baseline_src, reps)
        backend_results = run_backend_ab(make_backend_cases(args.smoke), current_src, reps)
    finally:
        if worktree is not None:
            subprocess.run(
                ["git", "worktree", "remove", "--force", worktree],
                cwd=REPO_ROOT,
                capture_output=True,
            )

    report = {
        "schema": "repro.bench_simulator/v1",
        "generated": started,
        "generated_by": "benchmarks/bench_simulator.py",
        "mode": "smoke" if args.smoke else "full",
        "reps_per_case": reps,
        "baseline_rev": args.baseline,
        "python": sys.version.split()[0],
        "cases": results,
        "backend_ab": backend_results,
        "acceptance": ACCEPTANCE,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}", flush=True)

    ok = True
    # The 1056-node array smoke budget holds in every mode (smoke runs
    # fewer cycles, so a smoke pass is a necessary, full a sufficient
    # check).
    array_wall = backend_results["paper1k_fig9_point"]["array_wall_time_s"]
    budget = ACCEPTANCE["paper1k_fig9_point_max_array_seconds"]
    status = "ok" if array_wall <= budget else "OVER BUDGET"
    print(
        f"acceptance paper1k_fig9_point: array {array_wall:.2f}s "
        f"(<= {budget:.0f}s): {status}"
    )
    ok = ok and array_wall <= budget

    if args.baseline and not args.smoke:
        for case, key in (
            ("fig9_point_load20", "fig9_point_load20_min_speedup"),
            ("fig9_point_saturation", "fig9_point_saturation_min_speedup"),
        ):
            speedup = results[case]["speedup"]
            bar = ACCEPTANCE[key]
            status = "ok" if speedup >= bar else "BELOW BAR"
            print(f"acceptance {case}: {speedup:.2f}x (>= {bar}x): {status}")
            ok = ok and speedup >= bar
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
