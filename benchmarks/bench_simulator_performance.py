"""Microbenchmark: simulator cycle rate on the two paper networks.

Unlike the figure benches (timed once, result-focused), this one uses
pytest-benchmark's statistics to track the simulator's raw speed --
useful for spotting performance regressions in the switch loop.
"""

from repro.core.params import DragonflyParams
from repro.network.config import SimulationConfig
from repro.network.simulator import Simulator
from repro.network.traffic import make_pattern
from repro.routing.ugal import make_routing
from repro.topology.dragonfly import Dragonfly


def _run_once(topology, cycles=300):
    config = SimulationConfig(
        load=0.3,
        warmup_cycles=cycles,
        measure_cycles=cycles,
        drain_max_cycles=10 * cycles,
    )
    pattern = make_pattern("uniform_random", topology, seed=7)
    simulator = Simulator(topology, make_routing("UGAL-L_VCH"), pattern, config)
    return simulator.run()


def test_simulator_speed_72_nodes(benchmark):
    topology = Dragonfly(DragonflyParams.paper_example_72())
    result = benchmark.pedantic(
        lambda: _run_once(topology), rounds=3, iterations=1
    )
    assert result.drained


def test_simulator_speed_1k_nodes(benchmark):
    topology = Dragonfly(DragonflyParams.paper_1k())
    result = benchmark.pedantic(
        lambda: _run_once(topology, cycles=100), rounds=1, iterations=1
    )
    assert result.samples
