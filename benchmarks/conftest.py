"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper via the
experiment registry, times it with pytest-benchmark, prints the rows
(bypassing capture so they land in the console / tee'd log), and saves
them under ``benchmarks/results/`` for the record.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(capfd):
    """Print a block of text to the real terminal and archive it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capfd.disabled():
            print()
            print(text)

    return _report


@pytest.fixture()
def run_experiment(benchmark, report):
    """Run a registered experiment once under the benchmark timer."""

    def _run(experiment_id: str, quick: bool = True):
        from repro.experiments import get_experiment

        experiment = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: experiment.run(quick=quick), rounds=1, iterations=1
        )
        report(experiment_id, result.format_table())
        return result

    return _run
