"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper via the
experiment registry, times it with pytest-benchmark, prints the rows
(bypassing capture so they land in the console / tee'd log), and saves
them under ``benchmarks/results/`` for the record.

The experiment runners execute their sweeps through
``repro.experiments.base.experiment_executor``, so the figure
benchmarks (``bench_fig08`` .. ``bench_fig16``) parallelise and cache
transparently:

* ``REPRO_SWEEP_WORKERS=4`` fans each figure's sweep grid over 4
  worker processes (``auto`` = CPU count);
* ``REPRO_SWEEP_CACHE=benchmarks/.sweep-cache`` makes re-runs skip
  every already-simulated point.

Results are bit-identical whichever combination is active (see
docs/parallel-sweeps.md); the archived row files record which one was.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(capfd):
    """Print a block of text to the real terminal and archive it."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capfd.disabled():
            print()
            print(text)

    return _report


@pytest.fixture()
def run_experiment(benchmark, report):
    """Run a registered experiment once under the benchmark timer."""

    def _run(experiment_id: str, quick: bool = True):
        from repro.experiments import get_experiment
        from repro.network.cache import CACHE_ENV_VAR
        from repro.network.parallel import WORKERS_ENV_VAR

        experiment = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: experiment.run(quick=quick), rounds=1, iterations=1
        )
        executor_note = (
            f"   sweep executor: workers={os.environ.get(WORKERS_ENV_VAR, '1')} "
            f"cache={os.environ.get(CACHE_ENV_VAR) or 'off'}"
        )
        report(experiment_id, result.format_table() + "\n" + executor_note)
        return result

    return _run
