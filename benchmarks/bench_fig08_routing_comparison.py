"""Figure 8: MIN / VAL / UGAL-L / UGAL-G latency-vs-load, UR and WC."""

import math

import pytest


def test_fig08_routing_comparison(run_experiment):
    result = run_experiment("fig08")
    ur = [row for row in result.rows if row["pattern"] == "uniform_random"]
    wc = [row for row in result.rows if row["pattern"] == "worst_case"]

    # Figure 8(a): UR at high load -- MIN and the UGALs stay low; VAL is
    # saturated (or far slower) near capacity.
    high_ur = [row for row in ur if row["load"] >= 0.7]
    assert high_ur
    for row in high_ur:
        assert row["MIN"] < 40
    val_beyond_half = [row["VAL"] for row in ur if row["load"] > 0.55]
    assert all(math.isinf(v) or v > 40 for v in val_beyond_half)

    # Figure 8(b): WC -- MIN is saturated well below VAL/UGAL-G; UGAL-L's
    # intermediate latency exceeds UGAL-G's.
    for row in wc:
        if row["load"] >= 0.2:
            assert math.isinf(row["MIN"]) or row["MIN"] > 60
        if row["load"] >= 0.4:
            assert row["UGAL-G"] < 30
    mid = [row for row in wc if 0.15 <= row["load"] <= 0.4]
    assert any(row["UGAL-L"] > 2 * row["UGAL-G"] for row in mid)
