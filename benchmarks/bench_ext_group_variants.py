"""Extension: Figure 6(b) group variant simulated against Figure 5."""

import pytest


def test_ext_group_variants(run_experiment):
    result = run_experiment("ext_group_variants")
    fig5, fig6b = result.rows
    # Same k=7 router, doubled effective radix and nearly 4x the scale.
    assert fig5["k"] == fig6b["k"] == 7
    assert fig6b["k_eff"] == 2 * fig5["k_eff"]
    assert fig6b["N"] > 3 * fig5["N"]
    # The MIN worst-case bound follows 1/(a*h).
    assert fig5["min_wc_accepted"] == pytest.approx(1 / 8, rel=0.2)
    assert fig6b["min_wc_accepted"] == pytest.approx(1 / 16, rel=0.2)
