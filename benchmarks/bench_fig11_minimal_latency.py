"""Figure 11: UGAL-L minimal- vs non-minimal-packet latency, buffers 16/256."""

import math


def test_fig11_minimal_packet_latency(run_experiment):
    result = run_experiment("fig11")

    def finite(rows, key):
        return [row for row in rows if not math.isinf(row[key])]

    shallow = finite(
        [row for row in result.rows if row["buffer_depth"] == 16], "minimal"
    )
    deep = finite(
        [row for row in result.rows if row["buffer_depth"] == 256], "minimal"
    )
    assert shallow and deep

    # Minimal packets pay far more than non-minimal ones at load >= 0.2.
    for row in shallow:
        if row["load"] >= 0.2:
            assert row["minimal"] > 2 * row["nonminimal"]

    # ... and the penalty scales with buffer depth (compare same loads).
    deep_by_load = {row["load"]: row for row in deep}
    for row in shallow:
        other = deep_by_load.get(row["load"])
        if other is not None and row["load"] >= 0.2:
            assert other["minimal"] > 3 * row["minimal"]
