"""Table 2: hop-count and cable-length expressions, DF vs FB."""


def test_table2_topology_comparison(run_experiment):
    result = run_experiment("table2")
    fb, df = result.rows
    assert fb["minimal_diameter"] == "1*hl + 2*hg"
    assert df["minimal_diameter"] == "2*hl + 1*hg"
    assert fb["nonminimal_diameter"] == "2*hl + 4*hg"
    assert df["nonminimal_diameter"] == "3*hl + 2*hg"
    assert fb["avg_cable"] == "0.333*E"
    assert df["avg_cable"] == "0.667*E"
