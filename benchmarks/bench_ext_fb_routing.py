"""Extension: MIN/VAL/UGAL-L simulated on the flattened butterfly."""

import math


def test_ext_fb_routing(run_experiment):
    result = run_experiment("ext_fb_routing")
    adversarial = [
        row for row in result.rows if row["pattern"] == "fb_adversarial"
    ]
    beyond_cap = [row for row in adversarial if row["load"] > 0.25]
    assert beyond_cap
    for row in beyond_cap:
        assert math.isinf(row["FB-MIN"]) or row["FB-MIN"] > 100
        assert not math.isinf(row["FB-UGAL-L"])
    # On uniform traffic MIN wins and VAL pays its detour.
    uniform = [row for row in result.rows if row["pattern"] == "uniform_random"]
    for row in uniform:
        if not math.isinf(row["FB-VAL"]):
            assert row["FB-MIN"] <= row["FB-VAL"] + 1e-9
