"""Extension: measured saturation throughput vs closed-form bounds."""

import pytest


def test_ext_saturation_table(run_experiment):
    result = run_experiment("ext_saturation_table")
    by_key = {(row["routing"], row["pattern"]): row for row in result.rows}
    # Bisection resolution is 0.03; allow that plus stochastic slack.
    for key, row in by_key.items():
        assert row["measured"] == pytest.approx(
            row["analytic_bound"], abs=0.06
        ), key
