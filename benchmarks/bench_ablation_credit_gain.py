"""Ablation: the credit-delay gain knob of UGAL-L_CR.

Gain 0 disables the delayed-credit backpressure entirely (the decision
rule alone, i.e. UGAL-L_VCH behaviour); gain 1 is the paper's formula
verbatim; larger gains emulate proportionally shallower buffers.  The
library default (4) is where the Figure 16 buffer-insensitivity claim
holds on the Python model.
"""

import dataclasses

from repro.experiments.base import experiment_config, experiment_topology
from repro.network.sweep import run_point
from repro.routing.ugal import make_routing


def test_ablation_credit_delay_gain(benchmark, report):
    topology = experiment_topology(quick=True)

    def sweep():
        rows = []
        for gain in (0.0, 1.0, 4.0, 8.0):
            for depth in (16, 64):
                config = dataclasses.replace(
                    experiment_config(quick=True, load=0.3, vc_buffer_depth=depth),
                    credit_delay_gain=gain,
                )
                result = run_point(
                    topology, make_routing("UGAL-L_CR"), "worst_case", config
                )
                rows.append(
                    {
                        "gain": gain,
                        "depth": depth,
                        "latency": result.avg_latency,
                        "minimal_latency": result.avg_minimal_latency,
                        "accepted": result.accepted_load,
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["== ablation: credit-delay gain (WC traffic, load 0.3)"]
    lines.append(f"{'gain':>5} {'depth':>6} {'latency':>9} {'min_lat':>9} {'accepted':>9}")
    for row in rows:
        lines.append(
            f"{row['gain']:>5.1f} {row['depth']:>6d} {row['latency']:>9.2f} "
            f"{row['minimal_latency']:>9.2f} {row['accepted']:>9.3f}"
        )
    report("ablation_credit_gain", "\n".join(lines))

    by_key = {(row["gain"], row["depth"]): row for row in rows}
    # More gain -> lower intermediate latency at every depth.
    for depth in (16, 64):
        assert (
            by_key[(8.0, depth)]["latency"]
            < by_key[(1.0, depth)]["latency"]
            < by_key[(0.0, depth)]["latency"]
        )
    # Throughput is not sacrificed at this load.
    for row in rows:
        assert row["accepted"] > 0.28
