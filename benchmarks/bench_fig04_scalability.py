"""Figure 4: balanced dragonfly size vs router radix."""


def test_fig04_scalability(run_experiment):
    result = run_experiment("fig04")
    by_radix = {row["radix"]: row["N"] for row in result.rows}
    assert by_radix[7] == 72          # the Figure 5 example
    assert by_radix[15] == 1056       # the paper's simulated "1K" network
    assert by_radix[64] > 256_000     # "scales to over 256K nodes"
