"""Figure 16: UGAL-L_CR vs UGAL-L_VCH vs UGAL-G, WC/UR, buffers 16/256."""

import math


def _finite(rows, *keys):
    return [
        row for row in rows if all(not math.isinf(row[key]) for key in keys)
    ]


def test_fig16_credit_round_trip_routing(run_experiment):
    result = run_experiment("fig16")
    wc = [row for row in result.rows if row["pattern"] == "worst_case"]

    # Figure 16(a): at 16-flit buffers, UGAL-L_CR cuts intermediate
    # latency by >= 35% vs UGAL-L_VCH.
    mid16 = _finite(
        [r for r in wc if r["buffer_depth"] == 16 and 0.2 <= r["load"] <= 0.4],
        "UGAL-L_VCH", "UGAL-L_CR",
    )
    assert mid16
    assert any(r["UGAL-L_CR"] < 0.65 * r["UGAL-L_VCH"] for r in mid16)

    # Figure 16(b): at 256-flit buffers the reduction is dramatic (the
    # paper reports up to ~20x; we assert >= 4x).
    mid256 = _finite(
        [r for r in wc if r["buffer_depth"] == 256 and 0.2 <= r["load"] <= 0.4],
        "UGAL-L_VCH", "UGAL-L_CR",
    )
    assert mid256
    assert any(r["UGAL-L_CR"] < r["UGAL-L_VCH"] / 4 for r in mid256)

    # UGAL-L_CR's latency is far less buffer-sensitive than UGAL-L_VCH's.
    def growth(name):
        by_load_16 = {r["load"]: r[name] for r in mid16}
        growths = []
        for row in mid256:
            base = by_load_16.get(row["load"])
            if base and not math.isinf(base):
                growths.append(row[name] / base)
        return min(growths) if growths else math.inf

    assert growth("UGAL-L_CR") < growth("UGAL-L_VCH")
