"""Parallel sweep engine: wall-clock speedup with bit-identical results.

Times a Figure 8-sized load sweep (the 72-node dragonfly, UGAL-L,
uniform-random traffic, the quick-mode load grid) three ways:

1. serial (the historical single-process path),
2. parallel with 4 workers (``SweepExecutor(workers=4)``),
3. a cached re-run answered entirely from the on-disk result cache.

Asserts the three produce byte-identical statistics, and -- on machines
with >= 4 CPUs, where the process pool can actually run 4-wide -- that
the parallel run is at least 2x faster than serial.  The cached re-run
is faster still by orders of magnitude regardless of core count.
"""

import json
import os
import time

from repro.experiments.base import (
    experiment_config,
    experiment_topology,
    uniform_loads,
)
from repro.network.cache import SweepCache
from repro.network.parallel import SweepExecutor
from repro.network.sweep import load_sweep

ROUTING = "UGAL-L"
PATTERN = "uniform_random"
WORKERS = 4


def _sweep_bytes(points):
    """Canonical byte string of a sweep's full statistics."""
    return json.dumps(
        [point.result.to_dict() for point in points], sort_keys=True
    ).encode()


def test_parallel_sweep_speedup(report, tmp_path):
    topology = experiment_topology(quick=True)
    loads = uniform_loads(quick=True)
    config = experiment_config(quick=True)

    start = time.perf_counter()
    serial = load_sweep(topology, ROUTING, PATTERN, loads, config)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = load_sweep(
        topology, ROUTING, PATTERN, loads, config,
        executor=SweepExecutor(workers=WORKERS),
    )
    t_parallel = time.perf_counter() - start

    cached_executor = SweepExecutor(cache=SweepCache(tmp_path / "cache"))
    load_sweep(topology, ROUTING, PATTERN, loads, config, executor=cached_executor)
    start = time.perf_counter()
    cached = load_sweep(
        topology, ROUTING, PATTERN, loads, config, executor=cached_executor
    )
    t_cached = time.perf_counter() - start

    serial_bytes = _sweep_bytes(serial)
    assert _sweep_bytes(parallel) == serial_bytes, "parallel stats diverged"
    assert _sweep_bytes(cached) == serial_bytes, "cached stats diverged"
    assert cached_executor.stats["cached"] == len(loads)

    cpus = os.cpu_count() or 1
    speedup = t_serial / t_parallel if t_parallel else float("inf")
    cache_speedup = t_serial / t_cached if t_cached else float("inf")
    report(
        "parallel_sweep",
        "\n".join(
            [
                "== bench_parallel_sweep: Fig. 8-sized sweep "
                f"({ROUTING}, {PATTERN}, {len(loads)} loads, {cpus} CPUs)",
                f"   serial           {t_serial:8.2f} s",
                f"   {WORKERS} workers        {t_parallel:8.2f} s"
                f"  ({speedup:5.2f}x)",
                f"   cached re-run    {t_cached:8.4f} s"
                f"  ({cache_speedup:8.1f}x)",
                "   stats byte-identical across all three runs",
            ]
        ),
    )

    assert cache_speedup >= 2.0, "cached re-run must dominate serial"
    if cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at {WORKERS} workers on {cpus} CPUs, "
            f"measured {speedup:.2f}x"
        )
