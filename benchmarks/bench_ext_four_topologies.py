"""Extension: every Figure 19 topology driven by the same simulator."""

import math


def test_ext_four_topologies(run_experiment):
    result = run_experiment("ext_four_topologies")
    topologies = {row["topology"] for row in result.rows}
    assert topologies == {
        "dragonfly", "flattened_butterfly", "folded_clos", "torus_3d",
    }
    # Every case sustains its configured load with bounded latency.
    for row in result.rows:
        assert not math.isinf(row["latency"]), row
        assert row["accepted"] > 0.9 * row["load"], row
