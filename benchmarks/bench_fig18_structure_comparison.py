"""Figure 18: 64K-node dragonfly vs flattened butterfly structure."""

import pytest


def test_fig18_structure_comparison(run_experiment):
    result = run_experiment("fig18")
    fb, df = result.rows
    assert fb["topology"] == "flattened butterfly"
    assert df["topology"] == "dragonfly"
    # The dragonfly needs ~half the global cables for the same bisection.
    assert df["global_cables"] / fb["global_cables"] == pytest.approx(0.5, abs=0.1)
    # ... and a much smaller global-port fraction (25% vs 50% against the
    # paper's 64-port budget; 34% vs 49% against the wired radix).
    assert df["global_port_frac"] < 0.75 * fb["global_port_frac"]
