"""Figure 12: bimodal latency histogram of UGAL-L at load 0.25."""


def test_fig12_latency_histogram(run_experiment):
    result = run_experiment("fig12")
    for depth in (16, 256):
        rows = [row for row in result.rows if row["buffer_depth"] == depth]
        assert rows
        # The low-latency mass is dominated by non-minimal packets, the
        # high-latency tail by minimal packets (the paper's two modes).
        low = min(rows, key=lambda row: row["bin_start"])
        high = max(rows, key=lambda row: row["bin_start"])
        assert low["minimal_fraction_in_bin"] < 0.5
        assert high["minimal_fraction_in_bin"] > 0.5
    # Deeper buffers push the average up (the paper: 19.2 -> 39.19).
    avg16 = next(r["avg_latency"] for r in result.rows if r["buffer_depth"] == 16)
    avg256 = next(r["avg_latency"] for r in result.rows if r["buffer_depth"] == 256)
    assert avg256 > 1.5 * avg16
