"""Extension: bandwidth tapering of inter-group channels (Section 3.2)."""


def test_ext_tapering(run_experiment):
    result = run_experiment("ext_tapering")
    assert result.rows[0]["relative_global_cost"] == 1.0
    assert result.rows[-1]["relative_global_cost"] < 1.0
