"""Figure 1: router radix required for one-global-hop flat networks."""


def test_fig01_radix_requirement(run_experiment):
    result = run_experiment("fig01")
    rows = {row["N"]: row["required_radix"] for row in result.rows}
    # k ~ 2 sqrt(N): the paper's motivating curve.
    assert rows[10_000] < 210
    assert rows[1_000_000] > 1000
